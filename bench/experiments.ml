(* The reconstructed evaluation: one function per table/figure role
   (E1..E10, see DESIGN.md). Every function regenerates the rows/series
   the corresponding paper artefact reports. *)
open Yasksite
open Exp
module Measure = Engine.Measure

(* ------------------------------------------------------------------ *)
(* E1 — testbed characteristics table *)

let e1 () =
  header "e1" "Testbed characteristics (full-size machine models)";
  List.iter
    (fun m ->
      Table.print (Machine.describe m);
      print_newline ())
    [ Machine.cascade_lake; Machine.rome ];
  Printf.printf
    "Measurements below run on the 8x cache-scaled versions (%s, %s) with\n\
     working sets scaled alike; see DESIGN.md for the substitution rationale.\n"
    clx.Machine.name rome.Machine.name

(* ------------------------------------------------------------------ *)
(* E2 — stencil suite properties table *)

let e2 () =
  header "e2" "Stencil suite: static properties";
  let tbl =
    Table.create
      ~columns:
        (List.map
           (fun c -> (c, Table.Left))
           [ "name"; "rank"; "shape"; "radius"; "flops"; "loads";
             "B_c [B/LUP]"; "FLOP/B" ])
      ()
  in
  List.iter
    (fun s ->
      Table.add_row tbl (Stencil.Analysis.describe (Stencil.Analysis.of_spec s)))
    Stencil.Suite.all;
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* E3 / E4 — single-core ECM prediction vs measurement *)

let single_core_experiment machine =
  let tbl =
    Table.create
      ~columns:
        [ ("stencil", Table.Left); ("grid", Table.Left);
          ("pred cy/CL", Table.Right); ("meas cy/CL", Table.Right);
          ("pred MLUP/s", Table.Right); ("meas MLUP/s", Table.Right);
          ("err", Table.Right) ]
      ()
  in
  let errors = ref [] in
  List.iter
    (fun spec ->
      let spec = Stencil.Suite.resolve_defaults spec in
      let dims = dims_for spec in
      let p, m = pred_meas machine spec dims (Config.v ()) in
      let e = err ~predicted:p.Model.t_ecm ~measured:m.Measure.cycles_per_cl in
      errors := abs_float e :: !errors;
      Table.add_row tbl
        [ spec.Stencil.Spec.name;
          String.concat "x" (Array.to_list (Array.map string_of_int dims));
          Table.cell_f p.Model.t_ecm;
          Table.cell_f m.Measure.cycles_per_cl;
          Table.cell_f ~prec:0 (mlups p.Model.lups_single);
          Table.cell_f ~prec:0 (mlups m.Measure.lups_core);
          Table.cell_pct e ])
    Stencil.Suite.eval_suite;
  Table.print tbl;
  Printf.printf "mean |error| = %s, max |error| = %s\n"
    (Table.cell_pct (Stats.mean (Array.of_list !errors)))
    (Table.cell_pct (Stats.maximum (Array.of_list !errors)))

let e3 () =
  header "e3" "Single-core ECM prediction vs measurement (Cascade Lake)";
  single_core_experiment clx

let e4 () =
  header "e4" "Single-core ECM prediction vs measurement (Rome)";
  single_core_experiment rome

(* ------------------------------------------------------------------ *)
(* E5 — multicore scaling and bandwidth saturation *)

let scaling_experiment machine spec measured_threads =
  let spec = Stencil.Suite.resolve_defaults spec in
  let dims = dims_for spec in
  let info = Stencil.Analysis.of_spec spec in
  let predicted =
    Model.chip_scaling machine info ~dims ~config:Config.default
      ~max_threads:machine.Machine.cores
  in
  let measured =
    List.map
      (fun n ->
        ( float_of_int n,
          glups (Measure.lups_at_threads machine spec ~dims ~config:Config.default
                   ~threads:n) ))
      measured_threads
  in
  let p0 =
    Model.predict machine info ~dims ~config:Config.default
  in
  Printf.printf "%s on %s: predicted saturation at %d cores (ceiling %.2f GLUP/s)\n"
    spec.Stencil.Spec.name machine.Machine.name p0.Model.saturation_cores
    (glups p0.Model.lups_saturated);
  print_string
    (Chart.line
       ~title:
         (Printf.sprintf "%s scaling on %s" spec.Stencil.Spec.name
            machine.Machine.name)
       ~x_label:"cores" ~y_label:"GLUP/s"
       [ { Chart.label = "predicted";
           points =
             Array.map (fun (n, l) -> (float_of_int n, glups l)) predicted };
         { Chart.label = "measured"; points = Array.of_list measured } ]);
  let tbl =
    Table.create
      ~columns:
        [ ("cores", Table.Right); ("pred GLUP/s", Table.Right);
          ("meas GLUP/s", Table.Right); ("err", Table.Right) ]
      ()
  in
  List.iter
    (fun n ->
      let _, pl = predicted.(n - 1) in
      let ml =
        List.assoc (float_of_int n) measured
      in
      Table.add_row tbl
        [ string_of_int n;
          Table.cell_f (glups pl);
          Table.cell_f ml;
          Table.cell_pct (err ~predicted:(glups pl) ~measured:ml) ])
    measured_threads;
  Table.print tbl

let e5 () =
  header "e5" "Multicore scaling and bandwidth saturation, pred vs meas";
  scaling_experiment clx Stencil.Suite.heat_3d_7pt [ 1; 2; 4; 8; 12; 16; 20 ];
  print_newline ();
  scaling_experiment clx Stencil.Suite.heat_2d_5pt [ 1; 2; 4; 8; 12; 16; 20 ];
  print_newline ();
  scaling_experiment rome Stencil.Suite.heat_3d_7pt [ 1; 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E6 — spatial blocking sweep and layer conditions *)

let e6 () =
  header "e6" "Spatial blocking sweep: layer conditions vs performance";
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let dims = [| 64; 96; 96 |] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "heat-3d-7pt, %s, single core, y-block sweep"
           clx.Machine.name)
      ~columns:
        [ ("y-block", Table.Right); ("L1 cond", Table.Left);
          ("L2 cond", Table.Left); ("pred B/LUP L2", Table.Right);
          ("meas B/LUP L2", Table.Right); ("pred MLUP/s", Table.Right);
          ("meas MLUP/s", Table.Right) ]
      ()
  in
  let cond_name = function
    | Lc.All_fits -> "fits"
    | Lc.Outer_reuse -> "3D-LC"
    | Lc.Row_reuse -> "2D-LC"
    | Lc.No_reuse -> "broken"
  in
  let series_pred = ref [] and series_meas = ref [] in
  List.iter
    (fun by ->
      let config =
        if by = 0 then Config.v () else Config.v ~block:[| 0; by; 96 |] ()
      in
      let p, m = pred_meas clx spec dims config in
      let line_bytes = float_of_int (Machine.line_bytes clx) in
      let meas_l2_bpl = m.Measure.lines_per_cl.(1) *. line_bytes /. 8.0 in
      let by_label = if by = 0 then 96 else by in
      series_pred := (float_of_int by_label, mlups p.Model.lups_single) :: !series_pred;
      series_meas := (float_of_int by_label, mlups m.Measure.lups_core) :: !series_meas;
      Table.add_row tbl
        [ (if by = 0 then "none" else string_of_int by);
          cond_name p.Model.boundaries.(0).Lc.condition;
          cond_name p.Model.boundaries.(1).Lc.condition;
          Table.cell_f p.Model.boundaries.(1).Lc.bytes_per_lup;
          Table.cell_f meas_l2_bpl;
          Table.cell_f ~prec:0 (mlups p.Model.lups_single);
          Table.cell_f ~prec:0 (mlups m.Measure.lups_core) ])
    [ 2; 4; 8; 16; 32; 64; 0 ];
  Table.print tbl;
  print_string
    (Chart.line ~title:"performance vs y-block size" ~x_label:"y-block"
       ~y_label:"MLUP/s"
       [ { Chart.label = "predicted"; points = Array.of_list (List.rev !series_pred) };
         { Chart.label = "measured"; points = Array.of_list (List.rev !series_meas) } ])

(* ------------------------------------------------------------------ *)
(* E7 — vector folding *)

let folding_experiment machine folds =
  List.iter
    (fun spec ->
      let spec = Stencil.Suite.resolve_defaults spec in
      let dims = dims_for spec in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf "%s on %s" spec.Stencil.Spec.name
               machine.Machine.name)
          ~columns:
            [ ("fold", Table.Left); ("pred L1 lines/CL", Table.Right);
              ("meas L1 lines/CL", Table.Right); ("pred MLUP/s", Table.Right);
              ("meas MLUP/s", Table.Right) ]
          ()
      in
      List.iter
        (fun fold ->
          let config =
            match fold with
            | None -> Config.v ()
            | Some f -> Config.v ~fold:f ()
          in
          let p, m = pred_meas machine spec dims config in
          Table.add_row tbl
            [ (match fold with
              | None -> "linear"
              | Some f ->
                  String.concat "x" (Array.to_list (Array.map string_of_int f)));
              Table.cell_f p.Model.boundaries.(0).Lc.lines_per_cl;
              Table.cell_f m.Measure.lines_per_cl.(0);
              Table.cell_f ~prec:0 (mlups p.Model.lups_single);
              Table.cell_f ~prec:0 (mlups m.Measure.lups_core) ])
        folds;
      Table.print tbl;
      print_newline ())
    [ Stencil.Suite.heat_3d_7pt; Stencil.Suite.box_3d_27pt;
      Stencil.Suite.star_3d_r2 ]

let e7 () =
  header "e7" "Vector folding: cache-line utilisation and performance";
  folding_experiment clx
    [ None; Some [| 1; 2; 4 |]; Some [| 1; 4; 2 |]; Some [| 2; 2; 2 |];
      Some [| 1; 8; 1 |] ];
  folding_experiment rome [ None; Some [| 1; 2; 2 |]; Some [| 2; 2; 1 |] ]

(* ------------------------------------------------------------------ *)
(* E8 — temporal (wavefront) blocking *)

let wavefront_experiment machine spec =
  let spec = Stencil.Suite.resolve_defaults spec in
  (* Memory-bound working sets even for 2D: temporal blocking targets
     the memory boundary. *)
  let dims =
    match spec.Stencil.Spec.rank with
    | 2 -> [| 768; 768 |]
    | _ -> dims_for spec
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s on %s, single core" spec.Stencil.Spec.name
           machine.Machine.name)
      ~columns:
        [ ("wf depth", Table.Right); ("pred B/LUP mem", Table.Right);
          ("meas B/LUP mem", Table.Right); ("pred speedup", Table.Right);
          ("meas speedup", Table.Right) ]
      ()
  in
  let base_pred = ref 1.0 and base_meas = ref 1.0 in
  List.iter
    (fun wf ->
      let config = Config.v ~wavefront:wf () in
      let p, m = pred_meas machine spec dims config in
      if wf = 1 then begin
        base_pred := p.Model.lups_single;
        base_meas := m.Measure.lups_core
      end;
      Table.add_row tbl
        [ string_of_int wf;
          Table.cell_f p.Model.mem_bytes_per_lup;
          Table.cell_f m.Measure.mem_bytes_per_lup;
          Table.cell_f (p.Model.lups_single /. !base_pred);
          Table.cell_f (m.Measure.lups_core /. !base_meas) ])
    [ 1; 2; 4; 8 ];
  Table.print tbl;
  print_newline ()

let e8 () =
  header "e8" "Temporal (wavefront) blocking: traffic reduction and speedup";
  wavefront_experiment clx Stencil.Suite.heat_3d_7pt;
  wavefront_experiment clx Stencil.Suite.heat_2d_5pt;
  wavefront_experiment clx Stencil.Suite.box_3d_27pt;
  wavefront_experiment rome Stencil.Suite.heat_3d_7pt

(* ------------------------------------------------------------------ *)
(* E9 — tuning cost: analytic model vs empirical search *)

let e9 () =
  header "e9" "Autotuning cost and quality: analytic (YaskSite) vs empirical";
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let dims = [| 64; 64; 64 |] in
  let threads = 8 in
  let c = Tuner.compare_strategies clx spec ~dims ~threads in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "heat-3d-7pt %s, %d threads, 64^3 tuning grid"
           clx.Machine.name threads)
      ~columns:
        [ ("strategy", Table.Left); ("model evals", Table.Right);
          ("kernel runs", Table.Right); ("wall [s]", Table.Right);
          ("chosen config", Table.Left); ("meas GLUP/s", Table.Right) ]
      ()
  in
  let row name (r : Tuner.result) =
    Table.add_row tbl
      [ name;
        string_of_int r.Tuner.model_evaluations;
        string_of_int r.Tuner.kernel_runs;
        Table.cell_f r.Tuner.wall_seconds;
        Config.describe r.Tuner.chosen;
        Table.cell_f (glups r.Tuner.measured_lups) ]
  in
  row "analytic (ECM)" c.Tuner.analytic;
  row "empirical search" c.Tuner.empirical;
  Table.print tbl;
  Printf.printf
    "kernel-run cost ratio: %.0fx fewer runs analytically; wall-clock ratio \
     %.1fx; analytic choice reaches %s of the empirical optimum\n"
    c.Tuner.cost_ratio c.Tuner.wall_ratio (Table.cell_pct c.Tuner.quality)

(* ------------------------------------------------------------------ *)
(* E10 — Offsite integration: variant ranking for explicit ODE methods *)

let scheme_name = function
  | `Unfused -> "unfused"
  | `Fused -> "fused"
  | `Mixed mask ->
      "mixed:"
      ^ String.concat ""
          (Array.to_list (Array.map (fun b -> if b then "f" else "u") mask))

let ode_case machine (pde : Ode.Pde.t) tab threads =
  let dx = pde.Ode.Pde.dx in
  let h = 0.2 *. dx *. dx /. (4.0 *. float_of_int pde.Ode.Pde.rank) in
  let candidates = Offsite.evaluate machine pde tab ~h ~threads in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s x %s on %s, %d threads" tab.Ode.Tableau.name
           pde.Ode.Pde.name machine.Machine.name threads)
      ~columns:
        [ ("variant", Table.Left); ("tuned", Table.Left);
          ("sweeps", Table.Right); ("pred ms/step", Table.Right);
          ("meas ms/step", Table.Right); ("err", Table.Right) ]
      ()
  in
  List.iter
    (fun (c : Offsite.candidate) ->
      Table.add_row tbl
        [ scheme_name c.Offsite.variant.Offsite.Variant.scheme;
          (if c.Offsite.tuned then "yes" else "no");
          string_of_int (Offsite.Variant.sweeps_per_step c.Offsite.variant);
          Table.cell_f ~prec:3 (1e3 *. c.Offsite.predicted_step_seconds);
          Table.cell_f ~prec:3 (1e3 *. c.Offsite.measured_step_seconds);
          Table.cell_pct
            (err ~predicted:c.Offsite.predicted_step_seconds
               ~measured:c.Offsite.measured_step_seconds) ])
    candidates;
  Table.print tbl;
  let q = Offsite.quality candidates in
  Printf.printf
    "  kendall tau %.2f | top-1 %s | selected-vs-naive speedup %.2fx | mean \
     |err| %s\n\n"
    q.Offsite.kendall
    (if q.Offsite.top1 then "correct" else "WRONG")
    q.Offsite.speedup_selected
    (Table.cell_pct q.Offsite.mean_abs_error);
  q

let ode_case_mixed machine (pde : Ode.Pde.t) tab threads =
  let dx = pde.Ode.Pde.dx in
  let h = 0.2 *. dx *. dx /. (4.0 *. float_of_int pde.Ode.Pde.rank) in
  let candidates = Offsite.evaluate_mixed machine pde tab ~h ~threads in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "%s x %s on %s, %d threads — full fusion-mask space (%d candidates)"
           tab.Ode.Tableau.name pde.Ode.Pde.name machine.Machine.name threads
           (List.length candidates))
      ~columns:
        [ ("variant", Table.Left); ("tuned", Table.Left);
          ("sweeps", Table.Right); ("pred ms/step", Table.Right);
          ("meas ms/step", Table.Right) ]
      ()
  in
  List.iter
    (fun (c : Offsite.candidate) ->
      Table.add_row tbl
        [ scheme_name c.Offsite.variant.Offsite.Variant.scheme;
          (if c.Offsite.tuned then "yes" else "no");
          string_of_int (Offsite.Variant.sweeps_per_step c.Offsite.variant);
          Table.cell_f ~prec:3 (1e3 *. c.Offsite.predicted_step_seconds);
          Table.cell_f ~prec:3 (1e3 *. c.Offsite.measured_step_seconds) ])
    candidates;
  Table.print tbl;
  let q = Offsite.quality candidates in
  Printf.printf
    "  kendall tau %.2f | top-1 %s | selected within %s of the measured      optimum\n\n"
    q.Offsite.kendall
    (if q.Offsite.top1 then "correct" else "WRONG")
    (Table.cell_pct q.Offsite.selected_gap);
  q

let e10 () =
  header "e10" "Offsite integration: ODE variant ranking, pred vs meas";
  (* Rich variant space first: every per-stage fusion mask of RK4. *)
  ignore
    (ode_case_mixed clx (Ode.Pde.heat ~rank:2 ~n:384 ~alpha:1.0) Ode.Tableau.rk4 4
      : Offsite.quality);
  let qs =
    [ ode_case clx (Ode.Pde.heat ~rank:2 ~n:384 ~alpha:1.0) Ode.Tableau.rk4 4;
      ode_case clx (Ode.Pde.heat ~rank:2 ~n:384 ~alpha:1.0) Ode.Tableau.heun2 4;
      ode_case clx
        (Ode.Pde.heat ~rank:2 ~n:384 ~alpha:1.0)
        (Ode.Tableau.pirk ~stages:2 ~iterations:2)
        4;
      ode_case clx (Ode.Pde.heat ~rank:3 ~n:64 ~alpha:1.0) Ode.Tableau.rk4 4;
      ode_case rome (Ode.Pde.heat ~rank:2 ~n:384 ~alpha:1.0) Ode.Tableau.rk4 4 ]
  in
  let top1s = List.filter (fun q -> q.Offsite.top1) qs in
  Printf.printf
    "summary: top-1 correct in %d/%d cases; mean kendall tau %.2f; mean \
     selected speedup %.2fx\n"
    (List.length top1s) (List.length qs)
    (Stats.mean (Array.of_list (List.map (fun q -> q.Offsite.kendall) qs)))
    (Stats.mean
       (Array.of_list (List.map (fun q -> q.Offsite.speedup_selected) qs)))

(* ------------------------------------------------------------------ *)
(* E11 — ablation: ECM vs naive Roofline as the prediction engine *)

let e11 () =
  header "e11" "Ablation: ECM model vs naive Roofline baseline";
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "single core, %s (Roofline is config-blind)"
           clx.Machine.name)
      ~columns:
        [ ("stencil", Table.Left); ("meas MLUP/s", Table.Right);
          ("ECM MLUP/s", Table.Right); ("ECM err", Table.Right);
          ("Roofline MLUP/s", Table.Right); ("Roofline err", Table.Right) ]
      ()
  in
  let ecm_errors = ref [] and rl_errors = ref [] in
  List.iter
    (fun spec ->
      let spec = Stencil.Suite.resolve_defaults spec in
      let dims = dims_for spec in
      let info = Stencil.Analysis.of_spec spec in
      let p, m = pred_meas clx spec dims (Config.v ()) in
      let rl = Yasksite_ecm.Roofline.predict clx info ~threads:1 in
      let e_ecm =
        err ~predicted:p.Model.lups_single ~measured:m.Measure.lups_core
      in
      let e_rl =
        err ~predicted:rl.Yasksite_ecm.Roofline.lups_single
          ~measured:m.Measure.lups_core
      in
      ecm_errors := abs_float e_ecm :: !ecm_errors;
      rl_errors := abs_float e_rl :: !rl_errors;
      Table.add_row tbl
        [ spec.Stencil.Spec.name;
          Table.cell_f ~prec:0 (mlups m.Measure.lups_core);
          Table.cell_f ~prec:0 (mlups p.Model.lups_single);
          Table.cell_pct e_ecm;
          Table.cell_f ~prec:0
            (mlups rl.Yasksite_ecm.Roofline.lups_single);
          Table.cell_pct e_rl ])
    Stencil.Suite.eval_suite;
  Table.print tbl;
  Printf.printf "mean |error|: ECM %s vs Roofline %s\n"
    (Table.cell_pct (Stats.mean (Array.of_list !ecm_errors)))
    (Table.cell_pct (Stats.mean (Array.of_list !rl_errors)));
  (* Config sensitivity: Roofline cannot distinguish configurations. *)
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let dims = dims_for spec in
  Printf.printf
    "\nconfig sensitivity (heat-3d-7pt, measured MLUP/s vs ECM — Roofline \
     predicts %.0f MLUP/s for all):\n"
    (mlups
       (Yasksite_ecm.Roofline.predict clx
          (Stencil.Analysis.of_spec spec) ~threads:1)
         .Yasksite_ecm.Roofline.lups_single);
  List.iter
    (fun (label, config) ->
      let p, m = pred_meas clx spec dims config in
      Printf.printf "  %-18s ECM %5.0f  measured %5.0f\n" label
        (mlups p.Model.lups_single)
        (mlups m.Measure.lups_core))
    [ ("naive", Config.v ());
      ("blocked 8x96", Config.v ~block:[| 0; 8; 96 |] ());
      ("wavefront 4", Config.v ~wavefront:4 ());
      ("fold 1x8x1", Config.v ~fold:[| 1; 8; 1 |] ()) ]

(* ------------------------------------------------------------------ *)
(* E12 — method-level ranking (stability-limited cost per unit time) *)

let e12 () =
  header "e12"
    "Offsite method ranking: stability-limited cost per simulated second";
  let pde = Ode.Pde.heat ~rank:2 ~n:384 ~alpha:1.0 in
  let methods =
    [ Ode.Tableau.euler; Ode.Tableau.heun2; Ode.Tableau.rk4;
      Ode.Tableau.dopri5 ]
  in
  let choices = Offsite.rank_methods clx pde methods ~threads:4 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s on %s, 4 threads" pde.Ode.Pde.name
           clx.Machine.name)
      ~columns:
        [ ("method", Table.Left); ("order", Table.Right);
          ("h_stable", Table.Right); ("best variant", Table.Left);
          ("pred s/unit", Table.Right); ("meas s/unit", Table.Right) ]
      ()
  in
  List.iter
    (fun (c : Offsite.method_choice) ->
      Table.add_row tbl
        [ c.Offsite.tableau.Ode.Tableau.name;
          string_of_int c.Offsite.tableau.Ode.Tableau.order;
          Printf.sprintf "%.2e" c.Offsite.h_stable;
          scheme_name c.Offsite.candidate.Offsite.variant.Offsite.Variant.scheme
          ^ (if c.Offsite.candidate.Offsite.tuned then "+tuned" else "");
          Table.cell_f c.Offsite.predicted_time_per_unit;
          Table.cell_f c.Offsite.measured_time_per_unit ])
    choices;
  Table.print tbl;
  let pred =
    Array.of_list
      (List.map (fun c -> c.Offsite.predicted_time_per_unit) choices)
  in
  let meas =
    Array.of_list
      (List.map (fun c -> c.Offsite.measured_time_per_unit) choices)
  in
  Printf.printf
    "method-ranking kendall tau %.2f, top-1 %s (note: stability-limited \
     cost only; accuracy orders differ)\n"
    (Stats.kendall_tau pred meas)
    (if Stats.top1_agrees ~better_is_lower:true pred meas then "correct"
     else "WRONG")

(* ------------------------------------------------------------------ *)
(* E13 — extension: accuracy-constrained method + implementation choice *)

let e13 () =
  header "e13"
    "Offsite extension: cheapest method + variant for a target accuracy";
  let pde = Ode.Pde.heat ~rank:2 ~n:64 ~alpha:1.0 in
  let methods =
    [ Ode.Tableau.euler; Ode.Tableau.heun2; Ode.Tableau.rk4;
      Ode.Tableau.dopri5 ]
  in
  List.iter
    (fun tol ->
      let choices =
        Offsite.rank_methods_at_accuracy clx pde methods ~t_end:0.002 ~tol
          ~threads:4
      in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf "%s, t_end = 0.002, tol = %.0e, 4 threads"
               pde.Ode.Pde.name tol)
          ~columns:
            [ ("method", Table.Left); ("order", Table.Right);
              ("steps", Table.Right); ("achieved err", Table.Right);
              ("variant", Table.Left); ("pred ms", Table.Right);
              ("meas ms", Table.Right) ]
          ()
      in
      List.iter
        (fun (c : Offsite.accuracy_choice) ->
          Table.add_row tbl
            [ c.Offsite.tableau_a.Ode.Tableau.name;
              string_of_int c.Offsite.tableau_a.Ode.Tableau.order;
              string_of_int c.Offsite.steps;
              Printf.sprintf "%.1e" c.Offsite.achieved_error;
              scheme_name
                c.Offsite.candidate_a.Offsite.variant.Offsite.Variant.scheme;
              Table.cell_f (1e3 *. c.Offsite.predicted_seconds);
              Table.cell_f (1e3 *. c.Offsite.measured_seconds) ])
        choices;
      Table.print tbl;
      let pred =
        Array.of_list (List.map (fun c -> c.Offsite.predicted_seconds) choices)
      in
      let meas =
        Array.of_list (List.map (fun c -> c.Offsite.measured_seconds) choices)
      in
      Printf.printf "  kendall tau %.2f, top-1 %s\n\n"
        (Stats.kendall_tau pred meas)
        (if Stats.top1_agrees ~better_is_lower:true pred meas then "correct"
         else "WRONG"))
    [ 1e-3; 1e-9 ]

(* ------------------------------------------------------------------ *)
(* E14 — resilient tuning: quality and cost of the empirical sweep
   under an injected fault plan, against the analytic tuner *)

let e14 () =
  header "e14"
    "Resilient tuning under injected faults: quality/cost vs fault rate";
  let fault_seed = 42 in
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt in
  let dims = [| 256; 256 |] in
  let threads = 4 in
  Printf.printf
    "fault plan: seed %d, lognormal noise sigma 0.05, outlier rate 0.05 \
     (x4.0);\nretry cap 4, 2 repeats per candidate, median + MAD rejection. \
     All runs\nare reproducible from the seed.\n"
    fault_seed;
  let machines =
    List.filter_map
      (fun path ->
        match Machine_file.load path with
        | Ok m -> Some (Machine.scaled ~factor:8 m)
        | Error msg ->
            Printf.printf "skipping %s: %s\n" path msg;
            None)
      [ "machines/skylake-sp.machine"; "machines/zen3.machine" ]
  in
  List.iter
    (fun m ->
      let analytic = Tuner.tune_analytic m spec ~dims ~threads in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf "heat-2d-5pt on %s, %d threads, 256^2 grid"
               m.Machine.name threads)
          ~columns:
            [ ("fail rate", Table.Right); ("kernel runs", Table.Right);
              ("attempts", Table.Right); ("skipped", Table.Right);
              ("degraded", Table.Left); ("emp GLUP/s", Table.Right);
              ("quality", Table.Right); ("cost ratio", Table.Right) ]
          ()
      in
      List.iter
        (fun fail_rate ->
          let faults =
            Faults.Plan.v ~seed:fault_seed ~fail_rate ~noise_sigma:0.05
              ~outlier_rate:0.05 ~outlier_factor:4.0 ()
          in
          let policy = Faults.Policy.v ~max_attempts:4 ~repeats:2 () in
          let emp =
            Tuner.tune_empirical ~faults ~policy m spec ~dims ~threads
          in
          Table.add_row tbl
            [ Printf.sprintf "%.2f" fail_rate;
              string_of_int emp.Tuner.kernel_runs;
              string_of_int emp.Tuner.attempts;
              string_of_int (List.length emp.Tuner.skipped);
              (if emp.Tuner.degraded then "yes" else "no");
              Table.cell_f (glups emp.Tuner.measured_lups);
              (* quality: how close the analytic (zero-run) choice gets
                 to what the fault-ridden empirical sweep found *)
              Table.cell_pct
                (analytic.Tuner.measured_lups /. emp.Tuner.measured_lups);
              Printf.sprintf "%.0fx"
                (float_of_int emp.Tuner.kernel_runs
                /. float_of_int analytic.Tuner.kernel_runs) ])
        [ 0.0; 0.1; 0.3; 0.5 ];
      Table.print tbl;
      print_newline ())
    machines;
  Printf.printf
    "The analytic tuner needs one validation run regardless of the fault \
     rate;\nthe empirical sweep pays for every retry and loses candidates \
     as the rate\nclimbs, degrading to model ranking past the policy \
     threshold.\n"

(* ------------------------------------------------------------------ *)
(* E15 — domain-parallel execution and ECM memoization: tuning-sweep
   wall clock (sequential cold / parallel cold / parallel warm),
   pool-invariance of the empirical sweep, and the Offsite memo-cache
   hit rate. Writes the machine-readable record bench/BENCH_parallel.json. *)

let e15 () =
  header "e15"
    "Domain-parallel tuning and ECM memoization (BENCH_parallel.json)";
  let domains = 4 in
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let info = Stencil.Analysis.of_spec spec in
  let dims = [| 64; 64; 64 |] in
  let threads = 8 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Pool.with_pool ~domains @@ fun pool ->
  (* Analytic ranking three ways: sequential on a cold cache, the pool
     on a cold cache, and the pool on the now-warm cache — the steady
     state of repeated rankings (resumed tunes, Offsite re-scoring). *)
  let seq_cache = Model_cache.create () in
  let ranked_seq, seq_cold_s =
    time (fun () -> Advisor.rank_all ~cache:seq_cache clx info ~dims ~threads)
  in
  let par_cache = Model_cache.create () in
  let ranked_par, par_cold_s =
    time (fun () ->
        Advisor.rank_all ~cache:par_cache ~pool clx info ~dims ~threads)
  in
  (* Warm timing is short; take the best of three to shed scheduler
     noise. *)
  let ranked_warm, par_warm_s =
    let best = ref infinity and last = ref ranked_par in
    for _ = 1 to 3 do
      let r, s =
        time (fun () ->
            Advisor.rank_all ~cache:par_cache ~pool clx info ~dims ~threads)
      in
      last := r;
      if s < !best then best := s
    done;
    (!last, !best)
  in
  let same_ranking =
    let configs l = List.map (fun (c, _) -> Config.describe c) l in
    configs ranked_seq = configs ranked_par
    && configs ranked_seq = configs ranked_warm
  in
  let cs = Model_cache.stats par_cache in
  let speedup_cold = seq_cold_s /. par_cold_s in
  let speedup_warm = seq_cold_s /. par_warm_s in
  Printf.printf
    "analytic ranking (%d candidates, %d domains):\n\
    \  sequential, cold cache  %.4f s\n\
    \  parallel,   cold cache  %.4f s  (%.2fx)\n\
    \  parallel,   warm cache  %.4f s  (%.2fx, %d hits / %d misses)\n\
    \  rankings %s\n"
    (List.length ranked_seq) domains seq_cold_s par_cold_s speedup_cold
    par_warm_s speedup_warm cs.Model_cache.hits cs.Model_cache.misses
    (if same_ranking then "identical" else "DIFFER");
  (* The empirical sweep must select the same result on the pool: every
     candidate draws faults and jitter from index-derived streams. *)
  let faults = Faults.Plan.v ~seed:42 ~fail_rate:0.1 ~noise_sigma:0.05 () in
  let policy = Faults.Policy.v ~max_attempts:4 ~repeats:2 () in
  let espec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt in
  let edims = [| 128; 128 |] in
  let emp_seq, emp_seq_s =
    time (fun () ->
        Tuner.tune_empirical ~faults ~policy clx espec ~dims:edims ~threads:4)
  in
  let emp_par, emp_par_s =
    time (fun () ->
        Tuner.tune_empirical ~faults ~policy ~pool clx espec ~dims:edims
          ~threads:4)
  in
  let emp_identical =
    Config.describe emp_seq.Tuner.chosen
    = Config.describe emp_par.Tuner.chosen
    && emp_seq.Tuner.measured_lups = emp_par.Tuner.measured_lups
    && emp_seq.Tuner.attempts = emp_par.Tuner.attempts
    && List.length emp_seq.Tuner.skipped = List.length emp_par.Tuner.skipped
  in
  Printf.printf
    "empirical sweep under faults (heat-2d-5pt, fail rate 0.10): sequential \
     %.2f s, %d domains %.2f s; outcome %s (chosen %s, %.2f GLUP/s)\n"
    emp_seq_s domains emp_par_s
    (if emp_identical then "bit-identical" else "DIFFERS")
    (Config.describe emp_par.Tuner.chosen)
    (glups emp_par.Tuner.measured_lups);
  (* Offsite variant ranking re-evaluates shared kernels: the memo
     cache absorbs the repeats. *)
  let ode_cache = Model_cache.create () in
  let pde = Ode.Pde.heat ~rank:2 ~n:96 ~alpha:1.0 in
  let _ =
    (Offsite.evaluate ~cache:ode_cache ~pool clx pde Ode.Tableau.rk4 ~h:1e-5
       ~threads:4
      : Offsite.candidate list)
  in
  let os = Model_cache.stats ode_cache in
  Printf.printf
    "offsite rk4 variant ranking: %d model-cache hits / %d misses (%.0f%% \
     hit rate)\n"
    os.Model_cache.hits os.Model_cache.misses
    (100.0 *. Model_cache.hit_rate ode_cache);
  let json =
    Printf.sprintf
      "{\n\
      \  \"domains\": %d,\n\
      \  \"analytic_ranking\": {\n\
      \    \"candidates\": %d,\n\
      \    \"seq_cold_s\": %.6f,\n\
      \    \"par_cold_s\": %.6f,\n\
      \    \"par_warm_s\": %.6f,\n\
      \    \"speedup_par_cold\": %.2f,\n\
      \    \"speedup_par_warm\": %.2f,\n\
      \    \"rankings_identical\": %b,\n\
      \    \"cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f }\n\
      \  },\n\
      \  \"empirical_tuning\": {\n\
      \    \"seq_s\": %.6f,\n\
      \    \"par_s\": %.6f,\n\
      \    \"bit_identical\": %b,\n\
      \    \"chosen\": \"%s\",\n\
      \    \"measured_glups\": %.4f\n\
      \  },\n\
      \  \"offsite_ranking\": {\n\
      \    \"cache_hits\": %d,\n\
      \    \"cache_misses\": %d,\n\
      \    \"hit_rate\": %.4f\n\
      \  }\n\
       }\n"
      domains (List.length ranked_seq) seq_cold_s par_cold_s par_warm_s
      speedup_cold speedup_warm same_ranking cs.Model_cache.hits
      cs.Model_cache.misses
      (Model_cache.hit_rate par_cache)
      emp_seq_s emp_par_s emp_identical
      (Config.describe emp_par.Tuner.chosen)
      (glups emp_par.Tuner.measured_lups)
      os.Model_cache.hits os.Model_cache.misses
      (Model_cache.hit_rate ode_cache)
  in
  Out_channel.with_open_text "bench/BENCH_parallel.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote bench/BENCH_parallel.json\n"

(* ------------------------------------------------------------------ *)
(* E16 — the kernel-plan execution backend vs the legacy closure tree:
   sweep wall clock at rank 2 and 3 (identical grids, bit-identical
   outputs asserted), plus a sanitized pass over the legal tuning space
   of both shipped machine models confirming the plan driver traps
   nowhere the schedule analyzer allows. Writes bench/BENCH_plan.json. *)

let e16 () =
  header "e16" "Kernel-plan backend vs closure backend (BENCH_plan.json)";
  let module Sweep = Engine.Sweep in
  let module Sanitizer = Engine.Sanitizer in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sweep_case (spec, dims, reps) =
    let spec = Stencil.Suite.resolve_defaults spec in
    let info = Stencil.Analysis.of_spec spec in
    let halo = Stencil.Analysis.halo info in
    let rank = spec.Stencil.Spec.rank in
    let prng = Yasksite_util.Prng.create ~seed:(16 * rank) in
    let a = Grid.create ~halo ~dims () in
    Grid.fill a ~f:(fun _ ->
        Yasksite_util.Prng.float_range prng ~lo:(-1.0) ~hi:1.0);
    Grid.halo_dirichlet a 0.25;
    let run backend =
      let o = Grid.create ~halo ~dims () in
      (* Best-of-3 over [reps] back-to-back sweeps to shed scheduler
         noise; the first timed run also warms the allocator. *)
      let best = ref infinity in
      for _ = 1 to 3 do
        let (_ : Sweep.stats), s =
          time (fun () ->
              let acc = ref Sweep.zero_stats in
              for _ = 1 to reps do
                acc :=
                  Sweep.add_stats !acc
                    (Sweep.run ~backend spec ~inputs:[| a |] ~output:o)
              done;
              !acc)
        in
        if s < !best then best := s
      done;
      (o, !best)
    in
    let o_plan, plan_s = run Sweep.Plan_backend in
    let o_closure, closure_s = run Sweep.Closure_backend in
    let identical = Grid.max_abs_diff o_plan o_closure = 0.0 in
    let points = Array.fold_left ( * ) 1 dims in
    let speedup = closure_s /. plan_s in
    Printf.printf
      "%-14s rank %d %-12s %7d pts x%d: closure %.4f s, plan %.4f s \
       (%.2fx, outputs %s)\n"
      spec.Stencil.Spec.name rank
      (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
      points reps closure_s plan_s speedup
      (if identical then "bit-identical" else "DIFFER");
    (spec, dims, points, reps, closure_s, plan_s, speedup, identical)
  in
  let cases =
    List.map sweep_case
      [ (Stencil.Suite.heat_2d_5pt, [| 512; 512 |], 8);
        (Stencil.Suite.heat_3d_7pt, [| 96; 96; 96 |], 4) ]
  in
  (* The plan driver skips per-point bounds checks; run the whole legal
     tuning space of both shipped machine models under the fail-fast
     sanitizer to show it traps nowhere the analyzer admits. *)
  let spec2 = Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt in
  let sdims = [| 24; 24 |] in
  let info2 = Stencil.Analysis.of_spec spec2 in
  let legal_rows =
    List.map
      (fun m ->
        let space = Advisor.space m ~dims:sdims ~threads:2 ~rank:2 in
        let legal = List.filter (Lint.Schedule.legal info2 ~dims:sdims) space in
        let traps = ref 0 in
        List.iter
          (fun config ->
            try
              ignore
                (Engine.Measure.stencil_sweep ~sanitize:true m spec2
                   ~dims:sdims ~config
                  : Measure.t)
            with Sanitizer.Trap _ -> incr traps)
          legal;
        Printf.printf
          "%s: %d legal candidates of %d swept under the sanitizer, %d traps\n"
          m.Machine.name (List.length legal) (List.length space) !traps;
        (m, List.length space, List.length legal, !traps))
      [ clx; rome ]
  in
  let json =
    let case_json (spec, dims, points, reps, closure_s, plan_s, speedup, id) =
      Printf.sprintf
        "    {\n\
        \      \"stencil\": \"%s\",\n\
        \      \"rank\": %d,\n\
        \      \"dims\": [%s],\n\
        \      \"points\": %d,\n\
        \      \"reps\": %d,\n\
        \      \"closure_s\": %.6f,\n\
        \      \"plan_s\": %.6f,\n\
        \      \"speedup\": %.2f,\n\
        \      \"bit_identical\": %b\n\
        \    }"
        spec.Stencil.Spec.name spec.Stencil.Spec.rank
        (String.concat ", " (Array.to_list (Array.map string_of_int dims)))
        points reps closure_s plan_s speedup id
    in
    let legal_json (m, space, legal, traps) =
      Printf.sprintf
        "    { \"machine\": \"%s\", \"candidates\": %d, \"legal\": %d, \
         \"traps\": %d }"
        m.Machine.name space legal traps
    in
    Printf.sprintf
      "{\n\
      \  \"sweeps\": [\n%s\n  ],\n\
      \  \"sanitized_legal_space\": [\n%s\n  ]\n\
       }\n"
      (String.concat ",\n" (List.map case_json cases))
      (String.concat ",\n" (List.map legal_json legal_rows))
  in
  Out_channel.with_open_text "bench/BENCH_plan.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote bench/BENCH_plan.json\n"

(* E17 — what a safety certificate buys: wall clock of the sanitized
   sweep on the fully checked path (per-point shadow reads/writes) vs
   the certified fast path (shadow state bulk-committed), against the
   unsanitized sweep as the zero-overhead baseline. Outputs of all
   three paths are asserted bit-identical. Writes
   bench/BENCH_certify.json. *)

let e17 () =
  header "e17" "Checked vs certified sanitized sweeps (BENCH_certify.json)";
  let module Sweep = Engine.Sweep in
  let module Sanitizer = Engine.Sanitizer in
  let module Cert = Engine.Cert in
  let module Certify = Engine.Certify in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let case (spec, dims, reps) =
    let spec = Stencil.Suite.resolve_defaults spec in
    let info = Stencil.Analysis.of_spec spec in
    let halo = Stencil.Analysis.halo info in
    let prng = Yasksite_util.Prng.create ~seed:17 in
    let a = Grid.create ~halo ~dims () in
    Grid.fill a ~f:(fun _ ->
        Yasksite_util.Prng.float_range prng ~lo:(-1.0) ~hi:1.0);
    Grid.halo_dirichlet a 0.25;
    (* Each rep gets a fresh sanitizer (shadow state is per pass
       sequence) but shares grids; best-of-3 sheds scheduler noise. *)
    let run ~mode =
      let o = Grid.create ~halo ~dims () in
      let best = ref infinity in
      for _ = 1 to 3 do
        Cert.clear ();
        (match mode with
        | `Certified ->
            ignore
              (Certify.ensure spec ~inputs:[| a |] ~output:o
                 ~config:Config.default
                : bool)
        | `Checked | `Baseline -> ());
        let (_ : int), s =
          time (fun () ->
              for _ = 1 to reps do
                let sanitize =
                  match mode with
                  | `Baseline -> None
                  | `Checked | `Certified -> Some (Sanitizer.create ())
                in
                ignore
                  (Sweep.run ?sanitize spec ~inputs:[| a |] ~output:o
                    : Sweep.stats)
              done;
              0)
        in
        if s < !best then best := s
      done;
      let hits = Cert.fast_path_hits () in
      (o, !best, hits)
    in
    let o_base, base_s, _ = run ~mode:`Baseline in
    let o_checked, checked_s, checked_hits = run ~mode:`Checked in
    let o_cert, cert_s, cert_hits = run ~mode:`Certified in
    assert (checked_hits = 0);
    assert (cert_hits = reps);
    let identical =
      Grid.max_abs_diff o_base o_checked = 0.0
      && Grid.max_abs_diff o_base o_cert = 0.0
    in
    let points = Array.fold_left ( * ) 1 dims in
    Printf.printf
      "%-14s %-12s %7d pts x%d: plain %.4f s, checked %.4f s (%.2fx), \
       certified %.4f s (%.2fx, outputs %s)\n"
      spec.Stencil.Spec.name
      (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
      points reps base_s checked_s (checked_s /. base_s) cert_s
      (cert_s /. base_s)
      (if identical then "bit-identical" else "DIFFER");
    (spec, dims, points, reps, base_s, checked_s, cert_s, identical)
  in
  let cases =
    List.map case
      [ (Stencil.Suite.heat_2d_5pt, [| 384; 384 |], 6);
        (Stencil.Suite.heat_3d_7pt, [| 64; 64; 64 |], 4) ]
  in
  let json =
    let case_json (spec, dims, points, reps, base_s, checked_s, cert_s, id) =
      Printf.sprintf
        "    {\n\
        \      \"stencil\": \"%s\",\n\
        \      \"dims\": [%s],\n\
        \      \"points\": %d,\n\
        \      \"reps\": %d,\n\
        \      \"plain_s\": %.6f,\n\
        \      \"checked_s\": %.6f,\n\
        \      \"certified_s\": %.6f,\n\
        \      \"checked_overhead\": %.2f,\n\
        \      \"certified_overhead\": %.2f,\n\
        \      \"certified_speedup_vs_checked\": %.2f,\n\
        \      \"bit_identical\": %b\n\
        \    }"
        spec.Stencil.Spec.name
        (String.concat ", " (Array.to_list (Array.map string_of_int dims)))
        points reps base_s checked_s cert_s (checked_s /. base_s)
        (cert_s /. base_s) (checked_s /. cert_s) id
    in
    Printf.sprintf "{\n  \"sweeps\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map case_json cases))
  in
  Out_channel.with_open_text "bench/BENCH_certify.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote bench/BENCH_certify.json\n"

(* ------------------------------------------------------------------ *)
(* E18 — persistent store: warm starts, corruption, degraded mode.
   A second process (simulated by a fresh model cache on the same store
   root) warm-starts the analytic ranking from disk; an adversarially
   corrupted root is detected by [store verify] and only costs
   recomputation; an unusable root leaves results bit-identical to a
   store-less run. Writes bench/BENCH_store.json. *)

let e18 () =
  header "e18"
    "Persistent tuning store: warm start, corruption, degraded mode \
     (BENCH_store.json)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error _ -> ()
  in
  let entry_files root =
    let acc = ref [] in
    let rec walk dir =
      match Sys.readdir dir with
      | names ->
          Array.iter
            (fun n ->
              let p = Filename.concat dir n in
              if Sys.is_directory p then walk p
              else if not (String.length n > 0 && n.[0] = '.') then
                acc := p :: !acc)
            names
      | exception Sys_error _ -> ()
    in
    walk (Filename.concat root "objects");
    List.sort compare !acc
  in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yasksite-bench-store-%d" (Unix.getpid ()))
  in
  rm_rf root;
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let info = Stencil.Analysis.of_spec spec in
  let dims = [| 64; 64; 64 |] in
  let threads = 8 in
  (* Store-less baseline: what every degraded mode must reproduce. *)
  let base_cache = Model_cache.create () in
  let ranked_base =
    Advisor.rank_all ~cache:base_cache clx info ~dims ~threads
  in
  (* Cold: fresh cache, fresh root — every prediction is computed and
     spilled through the store. *)
  let s_cold = Store.open_root root in
  let cold_cache = Model_cache.create () in
  Model_cache.attach_store cold_cache s_cold;
  let ranked_cold, cold_s =
    time (fun () -> Advisor.rank_all ~cache:cold_cache clx info ~dims ~threads)
  in
  let cold_cs = Model_cache.stats cold_cache in
  (* Warm from disk: a fresh cache on the same root simulates a second
     process — memory is cold, the store serves every miss. *)
  let s_warm = Store.open_root root in
  let warm_cache = Model_cache.create () in
  Model_cache.attach_store warm_cache s_warm;
  let ranked_warm, warm_s =
    time (fun () -> Advisor.rank_all ~cache:warm_cache clx info ~dims ~threads)
  in
  let warm_cs = Model_cache.stats warm_cache in
  let cold_entries = (Store.usage s_cold).Store.entries in
  let ranking_identical =
    ranked_base = ranked_cold && ranked_cold = ranked_warm
  in
  Printf.printf
    "analytic ranking (%d candidates):\n\
    \  cold, empty store   %.4f s  (%d store misses, %d entries spilled)\n\
    \  warm from disk      %.4f s  (%.2fx, %d store hits / %d misses)\n\
    \  rankings %s across store-less, cold and warm runs\n"
    (List.length ranked_cold) cold_s cold_cs.Model_cache.store_misses
    cold_entries warm_s (cold_s /. warm_s)
    warm_cs.Model_cache.store_hits warm_cs.Model_cache.store_misses
    (if ranking_identical then "bit-identical" else "DIFFER");
  (* Offsite variant ranking: the cold model-cache hit rate is the E15
     baseline (repeated kernels inside one ranking); warm-from-disk
     converts the remaining misses into store hits. *)
  let pde = Ode.Pde.heat ~rank:2 ~n:96 ~alpha:1.0 in
  let off_cold_cache = Model_cache.create () in
  Model_cache.attach_store off_cold_cache (Store.open_root root);
  let _ =
    (Offsite.evaluate ~cache:off_cold_cache clx pde Ode.Tableau.rk4 ~h:1e-5
       ~threads:4
      : Offsite.candidate list)
  in
  let oc_cold = Model_cache.stats off_cold_cache in
  let off_warm_cache = Model_cache.create () in
  Model_cache.attach_store off_warm_cache (Store.open_root root);
  let _ =
    (Offsite.evaluate ~cache:off_warm_cache clx pde Ode.Tableau.rk4 ~h:1e-5
       ~threads:4
      : Offsite.candidate list)
  in
  let oc_warm = Model_cache.stats off_warm_cache in
  let rate hits total = if total = 0 then 0.0 else float_of_int hits /. float_of_int total in
  let cold_rate = rate oc_cold.Model_cache.hits (oc_cold.Model_cache.hits + oc_cold.Model_cache.misses) in
  let warm_rate =
    rate
      (oc_warm.Model_cache.hits + oc_warm.Model_cache.store_hits)
      (oc_warm.Model_cache.hits + oc_warm.Model_cache.misses)
  in
  Printf.printf
    "offsite rk4 ranking: cold %.1f%% model-cache hit rate; warm from disk \
     %.1f%% served without model evaluation (%d memory + %d store hits)\n"
    (100.0 *. cold_rate) (100.0 *. warm_rate) oc_warm.Model_cache.hits
    oc_warm.Model_cache.store_hits;
  (* Adversarial corruption: truncate, scribble over and mis-file
     entries, then let [verify] find them and the pipeline recompute. *)
  let files = entry_files root in
  let planted =
    match files with
    | a :: b :: c :: _ ->
        Out_channel.with_open_bin a (fun oc ->
            Out_channel.output_string oc "scribbled over");
        Out_channel.with_open_bin b (fun _ -> () (* truncated to empty *));
        Sys.rename c
          (Filename.concat (Filename.dirname c)
             "00000000000000000000000000000000");
        3
    | _ -> 0
  in
  let s_verify = Store.open_root root in
  let v1 = Store.verify s_verify in
  let post_cache = Model_cache.create () in
  Model_cache.attach_store post_cache (Store.open_root root);
  let ranked_post =
    Advisor.rank_all ~cache:post_cache clx info ~dims ~threads
  in
  let v2 = Store.verify (Store.open_root root) in
  Printf.printf
    "corruption: planted %d bad entries; verify flagged %d/%d, re-ranking \
     stayed %s and repaired the root (rescan: %d bad)\n"
    planted v1.Store.bad v1.Store.scanned
    (if ranked_post = ranked_base then "bit-identical" else "DIFFERENT")
    v2.Store.bad;
  (* Degraded mode: an unusable root must cost nothing but the misses. *)
  let dead_cache = Model_cache.create () in
  Model_cache.attach_store dead_cache (Store.open_root "/dev/null/nope");
  let ranked_dead =
    Advisor.rank_all ~cache:dead_cache clx info ~dims ~threads
  in
  let degraded_identical = ranked_dead = ranked_base in
  Printf.printf "degraded (unusable root): ranking %s vs store-less run\n"
    (if degraded_identical then "bit-identical" else "DIFFERENT");
  let json =
    Printf.sprintf
      "{\n\
      \  \"ranking\": {\n\
      \    \"candidates\": %d,\n\
      \    \"cold_s\": %.6f,\n\
      \    \"warm_from_disk_s\": %.6f,\n\
      \    \"speedup_warm\": %.2f,\n\
      \    \"bit_identical\": %b,\n\
      \    \"cold_store\": { \"hits\": %d, \"misses\": %d, \"entries\": %d },\n\
      \    \"warm_store\": { \"hits\": %d, \"misses\": %d }\n\
      \  },\n\
      \  \"offsite\": {\n\
      \    \"cold_hit_rate\": %.4f,\n\
      \    \"warm_no_eval_rate\": %.4f,\n\
      \    \"warm_memory_hits\": %d,\n\
      \    \"warm_store_hits\": %d,\n\
      \    \"warm_store_misses\": %d\n\
      \  },\n\
      \  \"corruption\": {\n\
      \    \"planted\": %d,\n\
      \    \"verify_scanned\": %d,\n\
      \    \"verify_bad\": %d,\n\
      \    \"reranking_bit_identical\": %b,\n\
      \    \"rescan_bad\": %d\n\
      \  },\n\
      \  \"degraded_root_bit_identical\": %b\n\
       }\n"
      (List.length ranked_cold) cold_s warm_s (cold_s /. warm_s)
      ranking_identical cold_cs.Model_cache.store_hits
      cold_cs.Model_cache.store_misses cold_entries
      warm_cs.Model_cache.store_hits
      warm_cs.Model_cache.store_misses cold_rate warm_rate
      oc_warm.Model_cache.hits oc_warm.Model_cache.store_hits
      oc_warm.Model_cache.store_misses planted v1.Store.scanned v1.Store.bad
      (ranked_post = ranked_base)
      v2.Store.bad degraded_identical
  in
  Out_channel.with_open_text "bench/BENCH_store.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote bench/BENCH_store.json\n"

(* ------------------------------------------------------------------ *)
(* E19 — the codegen backend: kernels specialized per plan fingerprint,
   compiled out of process and cached. Sweep wall clock against the
   plan interpreter and the closure tree (bit-identical outputs
   asserted), plus the compile-cache economics: first sweep against an
   empty store (pays the compiler) vs a fresh process warm-starting
   from the store (pays only the Dynlink load). Writes
   bench/BENCH_codegen.json. *)

let e19 () =
  header "e19"
    "Codegen backend vs plan and closure backends (BENCH_codegen.json)";
  let module Sweep = Engine.Sweep in
  let module Native = Engine.Native in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error _ -> ()
  in
  if not (Native.available ()) then begin
    (* No toolchain here: the backend falls back to the plan
       interpreter (covered by tests); record that and bail. *)
    Printf.printf
      "no OCaml toolchain available: codegen falls back to the plan \
       interpreter; nothing to measure\n";
    Out_channel.with_open_text "bench/BENCH_codegen.json" (fun oc ->
        Out_channel.output_string oc "{\n  \"toolchain\": false\n}\n");
    Printf.printf "wrote bench/BENCH_codegen.json\n"
  end
  else begin
    let sweep_case (spec, dims, reps) =
      let spec = Stencil.Suite.resolve_defaults spec in
      let info = Stencil.Analysis.of_spec spec in
      let halo = Stencil.Analysis.halo info in
      let rank = spec.Stencil.Spec.rank in
      let prng = Yasksite_util.Prng.create ~seed:(19 * rank) in
      let a = Grid.create ~halo ~dims () in
      Grid.fill a ~f:(fun _ ->
          Yasksite_util.Prng.float_range prng ~lo:(-1.0) ~hi:1.0);
      Grid.halo_dirichlet a 0.25;
      let run backend =
        let o = Grid.create ~halo ~dims () in
        (* Warm-up sweep first so the codegen timing measures the
           kernel, not its one-time compile; then best-of-3 over [reps]
           back-to-back sweeps to shed scheduler noise. *)
        ignore (Sweep.run ~backend spec ~inputs:[| a |] ~output:o
                 : Sweep.stats);
        let best = ref infinity in
        for _ = 1 to 3 do
          let (_ : Sweep.stats), s =
            time (fun () ->
                let acc = ref Sweep.zero_stats in
                for _ = 1 to reps do
                  acc :=
                    Sweep.add_stats !acc
                      (Sweep.run ~backend spec ~inputs:[| a |] ~output:o)
                done;
                !acc)
          in
          if s < !best then best := s
        done;
        (o, !best)
      in
      let o_closure, closure_s = run Sweep.Closure_backend in
      let o_plan, plan_s = run Sweep.Plan_backend in
      let o_codegen, codegen_s = run Sweep.Codegen_backend in
      let identical =
        Grid.max_abs_diff o_plan o_closure = 0.0
        && Grid.max_abs_diff o_plan o_codegen = 0.0
      in
      let points = Array.fold_left ( * ) 1 dims in
      let vs_plan = plan_s /. codegen_s in
      let vs_closure = closure_s /. codegen_s in
      Printf.printf
        "%-14s rank %d %-12s %7d pts x%d: closure %.4f s, plan %.4f s, \
         codegen %.4f s (%.2fx vs plan, %.2fx vs closure, outputs %s)\n"
        spec.Stencil.Spec.name rank
        (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
        points reps closure_s plan_s codegen_s vs_plan vs_closure
        (if identical then "bit-identical" else "DIFFER");
      (spec, dims, points, reps, closure_s, plan_s, codegen_s, vs_plan,
       vs_closure, identical)
    in
    let cases =
      List.map sweep_case
        [ (Stencil.Suite.heat_2d_5pt, [| 512; 512 |], 8);
          (Stencil.Suite.box_2d_9pt, [| 512; 512 |], 8);
          (Stencil.Suite.heat_3d_7pt, [| 96; 96; 96 |], 4) ]
    in
    (* Compile-cache economics on a throwaway store root: the cold
       first sweep pays the out-of-process compiler, a fresh process
       on the same root revives the compiled kernel and pays only the
       load. *)
    let root =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "yasksite-bench-kern-%d" (Unix.getpid ()))
    in
    rm_rf root;
    let cold_s, warm_s, cold_stats, warm_stats =
      Fun.protect
        ~finally:(fun () ->
          Native.reset_for_tests ();
          rm_rf root)
      @@ fun () ->
      let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt in
      let info = Stencil.Analysis.of_spec spec in
      let halo = Stencil.Analysis.halo info in
      let dims = [| 256; 256 |] in
      let a = Grid.create ~halo ~dims () in
      Grid.fill a ~f:(fun _ -> 0.5);
      Grid.halo_dirichlet a 0.25;
      let first () =
        let o = Grid.create ~halo ~dims () in
        snd
          (time (fun () ->
               ignore
                 (Sweep.run ~backend:Sweep.Codegen_backend spec
                    ~inputs:[| a |] ~output:o
                   : Sweep.stats)))
      in
      Native.reset_for_tests ();
      Native.set_store (Some (Store.open_root root));
      let cold_s = first () in
      let cold_stats = Native.stats () in
      (* reset_for_tests simulates a fresh process: memoized kernels,
         counters and the attached store are all dropped. *)
      Native.reset_for_tests ();
      Native.set_store (Some (Store.open_root root));
      let warm_s = first () in
      let warm_stats = Native.stats () in
      (cold_s, warm_s, cold_stats, warm_stats)
    in
    Printf.printf
      "compile cache (heat-2d-5pt, 256x256, first sweep of a process):\n\
      \  cold, empty store  %.4f s  (%d compile, %d store hits)\n\
      \  warm from store    %.4f s  (%.2fx; %d compiles, %d store hit)\n"
      cold_s cold_stats.Native.compiles cold_stats.Native.store_hits warm_s
      (cold_s /. warm_s)
      warm_stats.Native.compiles warm_stats.Native.store_hits;
    let json =
      let case_json
          (spec, dims, points, reps, closure_s, plan_s, codegen_s, vs_plan,
           vs_closure, id) =
        Printf.sprintf
          "    {\n\
          \      \"stencil\": \"%s\",\n\
          \      \"rank\": %d,\n\
          \      \"dims\": [%s],\n\
          \      \"points\": %d,\n\
          \      \"reps\": %d,\n\
          \      \"closure_s\": %.6f,\n\
          \      \"plan_s\": %.6f,\n\
          \      \"codegen_s\": %.6f,\n\
          \      \"speedup_vs_plan\": %.2f,\n\
          \      \"speedup_vs_closure\": %.2f,\n\
          \      \"bit_identical\": %b\n\
          \    }"
          spec.Stencil.Spec.name spec.Stencil.Spec.rank
          (String.concat ", " (Array.to_list (Array.map string_of_int dims)))
          points reps closure_s plan_s codegen_s vs_plan vs_closure id
      in
      Printf.sprintf
        "{\n\
        \  \"toolchain\": true,\n\
        \  \"sweeps\": [\n%s\n  ],\n\
        \  \"compile_cache\": {\n\
        \    \"cold_first_sweep_s\": %.6f,\n\
        \    \"warm_first_sweep_s\": %.6f,\n\
        \    \"speedup_warm\": %.2f,\n\
        \    \"cold_compiles\": %d,\n\
        \    \"cold_store_hits\": %d,\n\
        \    \"warm_compiles\": %d,\n\
        \    \"warm_store_hits\": %d\n\
        \  }\n\
         }\n"
        (String.concat ",\n" (List.map case_json cases))
        cold_s warm_s (cold_s /. warm_s) cold_stats.Native.compiles
        cold_stats.Native.store_hits warm_stats.Native.compiles
        warm_stats.Native.store_hits
    in
    Out_channel.with_open_text "bench/BENCH_codegen.json" (fun oc ->
        Out_channel.output_string oc json);
    Printf.printf "wrote bench/BENCH_codegen.json\n"
  end

(* E20 — the YS6xx translation validator: cold proof cost per suite
   kernel (pure static analysis, no toolchain needed), the kill rate of
   the seeded miscompile corpus, and the warm-path cost of the native
   certificate relative to kernel resolution (the gate must stay under
   a few percent of a store-revived resolution). Writes
   bench/BENCH_validate.json. *)

let e20 () =
  header "e20"
    "Translation-validator cost and mutation kill rate \
     (BENCH_validate.json)";
  let module Native = Engine.Native in
  let module Cert = Engine.Cert in
  let module NL = Lint.Native in
  let module Mis = Faults.Miscompile in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error _ -> ()
  in
  (* Every suite kernel × both layouts, with its emitted source. *)
  let corpus =
    List.concat_map
      (fun spec ->
        let spec = Stencil.Suite.resolve_defaults spec in
        let plan = Stencil.Lower.lower spec in
        let rank = spec.Stencil.Spec.rank in
        let halo = Stencil.Analysis.halo (Stencil.Analysis.of_spec spec) in
        let dims = Array.init rank (fun i -> max 8 ((2 * halo.(i)) + 1)) in
        List.filter_map
          (fun (lname, layout) ->
            let space = Grid.fresh_space () in
            let mk () = Grid.create ~space ~halo ~layout ~dims () in
            let inputs =
              Array.init spec.Stencil.Spec.n_fields (fun _ -> mk ())
            in
            let output = mk () in
            let v = Stencil.Codegen.variant_of ~plan ~inputs ~output in
            match Stencil.Codegen.source ~plan v with
            | Error _ -> None
            | Ok src -> Some (spec, lname, plan, v, inputs, src))
          [ ("linear", Grid.Linear);
            ( "folded",
              Grid.Folded
                (Array.init rank (fun i -> if i = rank - 1 then 4 else 1)) ) ])
      Stencil.Suite.all
  in
  (* Cold proof cost: parse + symbolic comparison, best of 3 over a
     small batch. *)
  let reps = 50 in
  let rows =
    List.map
      (fun (spec, lname, plan, v, inputs, src) ->
        let best = ref infinity in
        for _ = 1 to 3 do
          let (), s =
            time (fun () ->
                for _ = 1 to reps do
                  match NL.check ~plan ~variant:v ~inputs src with
                  | [] -> ()
                  | _ -> failwith "legal kernel rejected"
                done)
          in
          if s < !best then best := s
        done;
        let ms = !best /. float_of_int reps *. 1e3 in
        Printf.printf "%-16s %-6s  validate %.3f ms\n" spec.Stencil.Spec.name
          lname ms;
        (spec, lname, ms))
      corpus
  in
  (* Mutation kill rate across the whole corpus. *)
  let killed = ref 0 and total = ref 0 in
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun (_, _, plan, v, inputs, src) ->
      List.iter
        (fun (cls, mutant) ->
          incr total;
          let k, t =
            match Hashtbl.find_opt by_class cls with
            | Some (k, t) -> (k, t)
            | None -> (0, 0)
          in
          let codes =
            List.map
              (fun (d : Lint.Diagnostic.t) -> d.Lint.Diagnostic.code)
              (NL.check ~plan ~variant:v ~inputs mutant)
          in
          let hit = List.mem (Mis.expected_code cls) codes in
          if hit then incr killed;
          Hashtbl.replace by_class cls ((k + if hit then 1 else 0), t + 1))
        (Mis.corpus ~seed:42 ~per_class:3 src))
    corpus;
  Printf.printf "mutation corpus: %d/%d killed (%.1f%%)\n" !killed !total
    (100.0 *. float_of_int !killed /. float_of_int (max 1 !total));
  List.iter
    (fun cls ->
      match Hashtbl.find_opt by_class cls with
      | Some (k, t) ->
          Printf.printf "  %-20s %d/%d\n" (Mis.class_name cls) k t
      | None -> ())
    Mis.classes;
  (* Warm-path economics (needs the toolchain): a store-revived
     resolution with a native certificate pays only digest + lookup;
     without one it re-runs the full proof. *)
  let warm =
    if not (Native.available ()) then None
    else begin
      let root =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "yasksite-bench-validate-%d" (Unix.getpid ()))
      in
      rm_rf root;
      Fun.protect
        ~finally:(fun () ->
          Native.reset_for_tests ();
          Cert.clear ();
          Cert.set_store None;
          rm_rf root)
      @@ fun () ->
      let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt in
      let halo = Stencil.Analysis.halo (Stencil.Analysis.of_spec spec) in
      let dims = [| 64; 64 |] in
      let plan = Stencil.Lower.lower spec in
      let mk () = Grid.create ~halo ~dims () in
      let inputs = [| mk () |] and output = mk () in
      let store () = Store.open_root root in
      let attach ~certs =
        Native.reset_for_tests ();
        Cert.clear ();
        Native.set_store (Some (store ()));
        Cert.set_store (if certs then Some (store ()) else None)
      in
      (* Cold resolution: compile + full validation, certificate
         written through. *)
      attach ~certs:true;
      (match Native.kern_for ~plan ~inputs ~output with
      | Some _ -> ()
      | None -> failwith "toolchain probe lied");
      let resolve_once ~certs =
        attach ~certs;
        let r, s = time (fun () -> Native.kern_for ~plan ~inputs ~output) in
        assert (r <> None);
        (s, Native.stats ())
      in
      let best_of n f =
        let best = ref infinity and last = ref None in
        for _ = 1 to n do
          let s, st = f () in
          if s < !best then best := s;
          last := Some st
        done;
        (!best, Option.get !last)
      in
      let warm_cert_s, cert_stats =
        best_of 5 (fun () -> resolve_once ~certs:true)
      in
      let warm_val_s, val_stats =
        best_of 5 (fun () -> resolve_once ~certs:false)
      in
      (* The gate's own cost on the certified path, measured directly:
         digest of the source plus the certificate lookup. *)
      let v = Stencil.Codegen.variant_of ~plan ~inputs ~output in
      let src =
        match Stencil.Codegen.source ~plan v with
        | Ok s -> s
        | Error e -> failwith e
      in
      attach ~certs:true;
      ignore (Native.kern_for ~plan ~inputs ~output);
      let ckey = Stencil.Codegen.key ~plan v in
      let gate_reps = 200 in
      let (), gate_total =
        time (fun () ->
            for _ = 1 to gate_reps do
              let d = Digest.to_hex (Digest.string src) in
              let k = Cert.native_key ~ckey ~version:NL.version in
              match Cert.native_lookup k with
              | Some d' when d' = d -> ()
              | _ -> failwith "certificate missing"
            done)
      in
      let gate_s = gate_total /. float_of_int gate_reps in
      let overhead_pct = 100.0 *. gate_s /. warm_cert_s in
      Printf.printf
        "warm resolution (heat-2d-5pt, store-revived):\n\
        \  with certificate     %.4f ms (validations %d)\n\
        \  without certificate  %.4f ms (validations %d)\n\
        \  certificate gate     %.4f ms = %.2f%% of the certified \
         resolution\n"
        (warm_cert_s *. 1e3) cert_stats.Native.validations (warm_val_s *. 1e3)
        val_stats.Native.validations (gate_s *. 1e3) overhead_pct;
      Some (warm_cert_s, warm_val_s, gate_s, overhead_pct,
            cert_stats.Native.validations, val_stats.Native.validations)
    end
  in
  let json =
    let row_json (spec, lname, ms) =
      Printf.sprintf
        "    {\"stencil\": \"%s\", \"layout\": \"%s\", \
         \"validate_ms\": %.4f}"
        spec.Stencil.Spec.name lname ms
    in
    let class_json cls =
      let k, t =
        match Hashtbl.find_opt by_class cls with
        | Some kt -> kt
        | None -> (0, 0)
      in
      Printf.sprintf "    {\"class\": \"%s\", \"killed\": %d, \"total\": %d}"
        (Mis.class_name cls) k t
    in
    Printf.sprintf
      "{\n\
      \  \"validator_version\": %d,\n\
      \  \"kernels\": [\n%s\n  ],\n\
      \  \"mutation\": {\n\
      \    \"killed\": %d,\n\
      \    \"total\": %d,\n\
      \    \"kill_rate\": %.4f,\n\
      \    \"by_class\": [\n%s\n    ]\n\
      \  },\n\
      \  \"warm_path\": %s\n\
       }\n"
      NL.version
      (String.concat ",\n" (List.map row_json rows))
      !killed !total
      (float_of_int !killed /. float_of_int (max 1 !total))
      (String.concat ",\n" (List.map class_json Mis.classes))
      (match warm with
      | None -> "{\"toolchain\": false}"
      | Some (c, v_, g, pct, cv, vv) ->
          Printf.sprintf
            "{\n\
            \    \"toolchain\": true,\n\
            \    \"warm_certified_s\": %.6f,\n\
            \    \"warm_validated_s\": %.6f,\n\
            \    \"gate_s\": %.8f,\n\
            \    \"gate_overhead_pct\": %.3f,\n\
            \    \"certified_validations\": %d,\n\
            \    \"uncertified_validations\": %d\n\
            \  }"
            c v_ g pct cv vv)
  in
  Out_channel.with_open_text "bench/BENCH_validate.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote bench/BENCH_validate.json\n"

(* ------------------------------------------------------------------ *)
(* E21 — ECM-ranked stage fusion for stencil programs. The 16-stage
   hdiff pipeline is run under a spread of fuse/materialize partitions:
   host wall clock of fused vs fully-materialized execution (plan
   backend, outputs asserted bit-identical), and — on both shipped
   machine files, at the usual 1/8 simulation scale — the agreement
   between the ECM-predicted partition ranking and rankings measured
   on the simulated machine. Writes bench/BENCH_fusion.json. *)

let e21 () =
  header "e21"
    "ECM-ranked stage fusion for stencil programs (BENCH_fusion.json)";
  let module P = Stencil.Program in
  let module Prog = Engine.Prog in
  let p = Stencil.Suite.hdiff in
  let dims = [| 256; 256 |] in
  let config = Config.v () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let key inline = String.concat "," (List.sort compare inline) in
  let label inline = if inline = [] then "(none)" else key inline in
  let hp = P.halo_plan p in
  let fresh_inputs () =
    let space = Grid.fresh_space () in
    ( space,
      List.map
        (fun (name, halo) ->
          let prng = Yasksite_util.Prng.create ~seed:(21 + Hashtbl.hash name) in
          let g = Grid.create ~space ~halo ~dims () in
          Grid.fill g ~f:(fun _ ->
              Yasksite_util.Prng.float_range prng ~lo:(-1.0) ~hi:1.0);
          Grid.halo_dirichlet g 0.0;
          (name, g))
        hp.P.input_halo )
  in
  let checksum g =
    let d = Grid.dims g in
    let acc = ref 0.0 in
    for y = 0 to d.(0) - 1 do
      for x = 0 to d.(1) - 1 do
        acc := !acc +. Grid.get g [| y; x |]
      done
    done;
    !acc
  in
  (* Host wall clock of a whole program run (intermediate allocation
     included — that is the cost materialization actually pays), plan
     backend, warm-up plus best-of-3. *)
  let wall_memo = Hashtbl.create 8 in
  let wall inline =
    match Hashtbl.find_opt wall_memo (key inline) with
    | Some r -> r
    | None ->
        let fp = P.fuse p ~inline in
        let space, inputs = fresh_inputs () in
        let run () = Prog.run ~config ~space fp ~inputs in
        let r0 = run () in
        let best = ref infinity in
        for _ = 1 to 3 do
          let (_ : Prog.result), s = time run in
          if s < !best then best := s
        done;
        let sums = List.map (fun (n, g) -> (n, checksum g)) r0.Prog.outputs in
        let res = (!best, sums) in
        Hashtbl.replace wall_memo (key inline) res;
        res
  in
  (* Measured partition time on the simulated machine: one cachesim
     measurement per stage at its extended extent, summed. Memoized by
     (machine, stage expression, extent) — hdiff's four symmetric
     components collapse onto the same measurements. *)
  let meas_memo = Hashtbl.create 64 in
  let measured_time m fp =
    let fhp = P.halo_plan fp in
    Array.fold_left
      (fun acc (s : P.stage) ->
        let ext = List.assoc s.P.name fhp.P.stage_ext in
        let edims = Array.mapi (fun d e -> dims.(d) + (2 * e)) ext in
        let k =
          m.Machine.name ^ "|"
          ^ Stencil.Expr.to_c s.P.expr
          ^ "|"
          ^ String.concat "," (Array.to_list (Array.map string_of_int edims))
        in
        let t =
          match Hashtbl.find_opt meas_memo k with
          | Some t -> t
          | None ->
              let meas =
                Measure.stencil_sweep m (P.stage_spec fp s) ~dims:edims
                  ~config
              in
              let pts =
                float_of_int (Array.fold_left ( * ) 1 edims)
              in
              let t = pts /. meas.Measure.lups_chip in
              Hashtbl.replace meas_memo k t;
              t
        in
        acc +. t)
      0.0 fp.P.stages
  in
  let machines =
    List.map
      (fun f ->
        match Machine_file.load f with
        | Ok m -> (f, Machine.scaled ~factor:8 m)
        | Error e -> failwith (f ^ ": " ^ e))
      [ "machines/skylake-sp.machine"; "machines/zen3.machine" ]
  in
  let per_machine =
    List.map
      (fun (file, m) ->
        let ranked = Advisor.rank_partitions m p ~dims ~config in
        let total = List.length ranked in
        Printf.printf "\n%s (%s): %d partitions ranked\n" file
          m.Machine.name total;
        let inline_at i = (List.nth ranked i).Advisor.inline in
        (* A spread across the predicted ranking: the winner, quartile /
           median / worst entries, plus the two structural anchors
           (fully materialized, fully fused). *)
        let cands =
          List.sort_uniq compare
            (List.map (List.sort compare)
               [ []; inline_at 0; inline_at (total / 4);
                 inline_at (total / 2); inline_at (total - 1);
                 P.inlinable p ])
        in
        let rows =
          List.map
            (fun inline ->
              let e, rank =
                match
                  List.find_index
                    (fun (e : Advisor.partition) ->
                      key e.Advisor.inline = key inline)
                    ranked
                with
                | Some i -> (List.nth ranked i, i)
                | None -> failwith "candidate missing from ranking"
              in
              let meas = measured_time m (P.fuse p ~inline) in
              Printf.printf
                "  #%4d  %2d stages  pred %8.4f ms  meas %8.4f ms  %s\n"
                (rank + 1) e.Advisor.stages
                (1e3 *. e.Advisor.time)
                (1e3 *. meas) (label inline);
              (inline, e, rank, meas))
            cands
        in
        let pairs = ref 0 and concordant = ref 0 in
        List.iteri
          (fun i (_, (ei : Advisor.partition), _, mi) ->
            List.iteri
              (fun j ((_, (ej : Advisor.partition), _, mj)) ->
                if j > i then begin
                  incr pairs;
                  if ei.Advisor.time < ej.Advisor.time = (mi < mj) then
                    incr concordant
                end)
              rows)
          rows;
        let find_meas k' =
          let _, _, _, m' =
            List.find (fun (i, _, _, _) -> key i = k') rows
          in
          m'
        in
        let best = List.hd ranked in
        let meas_best = find_meas (key best.Advisor.inline) in
        let meas_unfused = find_meas "" in
        Printf.printf
          "  ranking agreement %d/%d pairs; best vs fully-materialized: \
           %.2fx predicted, %.2fx measured\n"
          !concordant !pairs
          ((List.find
              (fun (i, _, _, _) -> key i = "")
              rows
           |> fun (_, e, _, _) -> e.Advisor.time)
          /. best.Advisor.time)
          (meas_unfused /. meas_best);
        (file, m, total, rows, !pairs, !concordant, meas_unfused, meas_best,
         best))
      machines
  in
  (* Host wall clock over the union of interesting partitions. *)
  let wall_cands =
    List.sort_uniq compare
      ([] :: List.map (List.sort compare) (P.inlinable p :: List.map
         (fun (_, _, _, _, _, _, _, _, (b : Advisor.partition)) ->
           b.Advisor.inline)
         per_machine))
  in
  let wall_rows = List.map (fun inline -> (inline, wall inline)) wall_cands in
  let _, (unfused_wall, ref_sums) =
    List.find (fun (i, _) -> i = []) wall_rows
  in
  let bit_identical =
    List.for_all (fun (_, (_, sums)) -> sums = ref_sums) wall_rows
  in
  Printf.printf
    "\n\
     host wall clock (plan backend, best of 3; the host interpreter is\n\
     compute-bound, so recomputation costs dominate here — the simulated\n\
     machine above is where the memory-traffic trade-off plays out):\n";
  List.iter
    (fun (inline, (s, _)) ->
      Printf.printf "  %8.4f ms  %5.2fx vs unfused  %s\n" (1e3 *. s)
        (unfused_wall /. s) (label inline))
    wall_rows;
  Printf.printf "outputs across partitions: %s\n"
    (if bit_identical then "bit-identical" else "DIFFER");
  let json =
    let ints a =
      String.concat ", " (Array.to_list (Array.map string_of_int a))
    in
    let strs l =
      String.concat ", " (List.map (Printf.sprintf "%S") l)
    in
    let machine_json
        (file, m, total, rows, pairs, concordant, meas_unfused, meas_best,
         (best : Advisor.partition)) =
      let row_json (inline, (e : Advisor.partition), rank, meas) =
        Printf.sprintf
          "        {\n\
          \          \"inline\": [%s],\n\
          \          \"stages\": %d,\n\
          \          \"predicted_rank\": %d,\n\
          \          \"predicted_s\": %.6f,\n\
          \          \"measured_s\": %.6f\n\
          \        }"
          (strs inline) e.Advisor.stages (rank + 1) e.Advisor.time meas
      in
      Printf.sprintf
        "    {\n\
        \      \"file\": %S,\n\
        \      \"machine\": %S,\n\
        \      \"partitions_ranked\": %d,\n\
        \      \"candidates\": [\n%s\n      ],\n\
        \      \"ranking_agreement\": {\"pairs\": %d, \"concordant\": %d, \
         \"fraction\": %.3f},\n\
        \      \"best\": {\"inline\": [%s], \"predicted_s\": %.6f, \
         \"measured_s\": %.6f, \"measured_speedup_vs_unfused\": %.3f}\n\
        \    }"
        file m.Machine.name total
        (String.concat ",\n" (List.map row_json rows))
        pairs concordant
        (float_of_int concordant /. float_of_int (max 1 pairs))
        (strs best.Advisor.inline) best.Advisor.time meas_best
        (meas_unfused /. meas_best)
    in
    let wall_json (inline, (s, _)) =
      Printf.sprintf
        "      {\"inline\": [%s], \"seconds\": %.6f, \
         \"speedup_vs_unfused\": %.3f}"
        (strs inline) s (unfused_wall /. s)
    in
    Printf.sprintf
      "{\n\
      \  \"program\": \"hdiff\",\n\
      \  \"dims\": [%s],\n\
      \  \"scale_factor\": 8,\n\
      \  \"machines\": [\n%s\n  ],\n\
      \  \"wall_clock\": {\n\
      \    \"backend\": \"plan\",\n\
      \    \"note\": \"host interpreter is compute-bound: recomputation \
       dominates wall clock; the memory-traffic trade-off is measured on \
       the simulated machines above\",\n\
      \    \"bit_identical\": %b,\n\
      \    \"runs\": [\n%s\n    ]\n\
      \  }\n\
       }\n"
      (ints dims)
      (String.concat ",\n" (List.map machine_json per_machine))
      bit_identical
      (String.concat ",\n" (List.map wall_json wall_rows))
  in
  Out_channel.with_open_text "bench/BENCH_fusion.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote bench/BENCH_fusion.json\n"

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
            ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
            ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14);
            ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18);
            ("e19", e19); ("e20", e20); ("e21", e21) ]
