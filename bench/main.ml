(* Benchmark / experiment driver.

   dune exec bench/main.exe              -- run every experiment (E1..E14)
   dune exec bench/main.exe -- --exp e5  -- run one experiment
   dune exec bench/main.exe -- --micro   -- bechamel micro-benchmarks *)

let usage () =
  prerr_endline "usage: main.exe [--exp eN] [--micro] [--list]";
  exit 2

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | [ _ ] ->
      let t0 = Sys.time () in
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Printf.printf "\nall experiments completed in %.1f s (CPU)\n"
        (Sys.time () -. t0)
  | [ _; "--list" ] ->
      List.iter (fun (n, _) -> print_endline n) Experiments.all
  | [ _; "--micro" ] -> Micro.run ()
  | [ _; "--exp"; name ] -> (
      match List.assoc_opt (String.lowercase_ascii name) Experiments.all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S\n" name;
          usage ())
  | _ -> usage ()
