open Yasksite_cachesim
module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let tiny_level ?(assoc = 2) ?(sets = 2) () =
  Cache_level.v ~name:"T" ~size_bytes:(assoc * sets * 64) ~assoc
    ~bytes_per_cycle:1.0 ~latency_cycles:1.0 ()

let test_level_basics () =
  let l = Level.create (tiny_level ()) ~effective_size:(2 * 2 * 64) in
  Alcotest.(check int) "capacity" 4 (Level.capacity_lines l);
  Alcotest.(check bool) "miss when empty" false (Level.probe l ~line:0);
  Alcotest.(check bool) "insert fresh" true (Level.insert l ~line:0 ~dirty:false = None);
  Alcotest.(check bool) "hit after insert" true (Level.probe l ~line:0);
  Alcotest.(check int) "resident" 1 (Level.resident_lines l)

let test_level_lru () =
  (* One set (sets=1), assoc 2: lines with the same set index conflict. *)
  let l = Level.create (tiny_level ~assoc:2 ~sets:1 ()) ~effective_size:(2 * 64) in
  ignore (Level.insert l ~line:0 ~dirty:false);
  ignore (Level.insert l ~line:1 ~dirty:false);
  (* Touch 0 so 1 becomes LRU. *)
  Alcotest.(check bool) "touch 0" true (Level.probe l ~line:0);
  let evicted = Level.insert l ~line:2 ~dirty:false in
  Alcotest.(check bool) "evicts LRU line 1" true (evicted = Some (1, false));
  Alcotest.(check bool) "0 still there" true (Level.is_present l ~line:0)

let test_level_dirty () =
  let l = Level.create (tiny_level ~assoc:1 ~sets:1 ()) ~effective_size:64 in
  ignore (Level.insert l ~line:5 ~dirty:false);
  Level.mark_dirty l ~line:5;
  let evicted = Level.insert l ~line:6 ~dirty:false in
  Alcotest.(check bool) "dirty evict" true (evicted = Some (5, true))

let test_level_extract () =
  let l = Level.create (tiny_level ()) ~effective_size:(4 * 64) in
  ignore (Level.insert l ~line:3 ~dirty:true);
  Alcotest.(check bool) "extract dirty" true (Level.extract l ~line:3 = Some true);
  Alcotest.(check bool) "gone" false (Level.is_present l ~line:3);
  Alcotest.(check bool) "extract missing" true (Level.extract l ~line:3 = None)

let test_level_refresh_no_evict () =
  let l = Level.create (tiny_level ~assoc:1 ~sets:1 ()) ~effective_size:64 in
  ignore (Level.insert l ~line:9 ~dirty:false);
  Alcotest.(check bool) "reinsert returns none" true
    (Level.insert l ~line:9 ~dirty:true = None);
  let evicted = Level.insert l ~line:10 ~dirty:false in
  Alcotest.(check bool) "dirty ORed" true (evicted = Some (9, true))

(* --- hierarchy --- *)

let test_cold_stream () =
  let h = Hierarchy.create Machine.test_chip in
  let n = 32 in
  for i = 0 to n - 1 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "L1 misses" n c.Hierarchy.misses.(0);
  Alcotest.(check int) "mem loads" n c.Hierarchy.mem_loads;
  Alcotest.(check int) "boundary L1" n (Hierarchy.traffic_lines h ~level:0);
  Alcotest.(check int) "boundary mem" n (Hierarchy.traffic_lines h ~level:2);
  (* Second pass: everything fits in L1 (4 KiB = 64 lines). *)
  Hierarchy.reset_counters h;
  for i = 0 to n - 1 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "all L1 hits" n c.Hierarchy.hits.(0);
  Alcotest.(check int) "no mem" 0 c.Hierarchy.mem_loads

let test_same_line_hits () =
  let h = Hierarchy.create Machine.test_chip in
  Hierarchy.read h ~addr:0;
  Hierarchy.read h ~addr:8;
  Hierarchy.read h ~addr:63;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "one miss" 1 c.Hierarchy.misses.(0);
  Alcotest.(check int) "two hits" 2 c.Hierarchy.hits.(0)

let test_write_allocate_writeback () =
  let h = Hierarchy.create Machine.test_chip in
  (* Write one line, then stream enough lines to flush it out of all
     levels (L3 is 256 KiB = 4096 lines). *)
  Hierarchy.write h ~addr:0;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "write-allocate fetch" 1 c.Hierarchy.mem_loads;
  for i = 1 to 8192 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "dirty line written back" 1 c.Hierarchy.mem_writebacks

let test_l2_hit () =
  let h = Hierarchy.create Machine.test_chip in
  (* Touch 128 lines (8 KiB): evicts half of L1 (4 KiB) but fits L2. *)
  for i = 0 to 127 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  Hierarchy.reset_counters h;
  for i = 0 to 127 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "no mem traffic" 0 c.Hierarchy.mem_loads;
  Alcotest.(check bool) "L2 hits happen" true (c.Hierarchy.hits.(1) > 0)

let test_victim_l3 () =
  let rome = Machine.scaled ~factor:64 Machine.rome in
  let h = Hierarchy.create rome in
  (* L1 512 B = 8 lines, L2 8 KiB = 128 lines, L3 victim 256 KiB/4 ->
     effective for 1 core: 256 KiB = 4096 lines. Stream 256 lines: they
     spill from L2 into the victim L3. *)
  for i = 0 to 255 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  Hierarchy.reset_counters h;
  for i = 0 to 255 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "no second-pass mem traffic" 0 c.Hierarchy.mem_loads;
  Alcotest.(check bool) "L3 victim hits" true (c.Hierarchy.hits.(2) > 0)

let test_active_cores_shrink () =
  let h1 = Hierarchy.create ~active_cores:1 Machine.test_chip in
  let h4 = Hierarchy.create ~active_cores:4 Machine.test_chip in
  (* 2048 lines = 128 KiB: fits the full 256 KiB L3 but not a quarter. *)
  let stream h =
    for i = 0 to 2047 do
      Hierarchy.read h ~addr:(i * 64)
    done
  in
  stream h1;
  stream h4;
  Hierarchy.reset_counters h1;
  Hierarchy.reset_counters h4;
  stream h1;
  stream h4;
  let c1 = Hierarchy.counters h1 and c4 = Hierarchy.counters h4 in
  Alcotest.(check int) "full share: stays in L3" 0 c1.Hierarchy.mem_loads;
  Alcotest.(check bool) "quarter share: spills" true
    (c4.Hierarchy.mem_loads > 0)

let random_trace_invariants =
  QCheck.Test.make ~name:"hierarchy conservation invariants" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let machine =
        if Prng.bool rng then Machine.test_chip
        else Machine.scaled ~factor:64 Machine.rome
      in
      let h = Hierarchy.create machine in
      let n = 2000 in
      for _ = 1 to n do
        let addr = Prng.int rng ~bound:(1 lsl 20) in
        if Prng.bool rng then Hierarchy.read h ~addr else Hierarchy.write h ~addr
      done;
      let c = Hierarchy.counters h in
      c.Hierarchy.accesses = n
      && c.Hierarchy.loads + c.Hierarchy.stores = n
      && c.Hierarchy.hits.(0) + c.Hierarchy.misses.(0) = n
      && c.Hierarchy.mem_loads <= c.Hierarchy.misses.(0)
      && Hierarchy.traffic_lines h ~level:0 >= c.Hierarchy.misses.(0)
      && c.Hierarchy.mem_writebacks <= c.Hierarchy.stores)

let test_flush () =
  let h = Hierarchy.create Machine.test_chip in
  Hierarchy.read h ~addr:0;
  Hierarchy.flush h;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "counters cleared" 0 c.Hierarchy.accesses;
  Hierarchy.read h ~addr:0;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "cold again" 1 c.Hierarchy.misses.(0)

let base_suite =
  [ Alcotest.test_case "level basics" `Quick test_level_basics;
    Alcotest.test_case "level LRU" `Quick test_level_lru;
    Alcotest.test_case "level dirty" `Quick test_level_dirty;
    Alcotest.test_case "level extract" `Quick test_level_extract;
    Alcotest.test_case "level refresh" `Quick test_level_refresh_no_evict;
    Alcotest.test_case "cold stream" `Quick test_cold_stream;
    Alcotest.test_case "same-line hits" `Quick test_same_line_hits;
    Alcotest.test_case "write allocate + writeback" `Quick
      test_write_allocate_writeback;
    Alcotest.test_case "L2 hit path" `Quick test_l2_hit;
    Alcotest.test_case "victim L3 (Rome)" `Quick test_victim_l3;
    Alcotest.test_case "active cores shrink share" `Quick
      test_active_cores_shrink;
    qt random_trace_invariants;
    Alcotest.test_case "flush" `Quick test_flush ]

let test_write_hit_no_traffic () =
  let h = Hierarchy.create Machine.test_chip in
  Hierarchy.write h ~addr:0;
  Hierarchy.reset_counters h;
  Hierarchy.write h ~addr:8;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "write hit" 1 c.Hierarchy.hits.(0);
  Alcotest.(check int) "no line movement" 0 (Hierarchy.traffic_lines h ~level:0)

let test_traffic_bytes () =
  let h = Hierarchy.create Machine.test_chip in
  for i = 0 to 9 do
    Hierarchy.read h ~addr:(i * 64)
  done;
  Alcotest.(check int) "bytes = lines * 64" 640
    (Hierarchy.traffic_bytes h ~level:2);
  Alcotest.(check int) "line size exposed" 64 (Hierarchy.line_bytes h);
  Alcotest.(check int) "levels" 3 (Hierarchy.levels h)




let test_write_nt () =
  let h = Hierarchy.create Machine.test_chip in
  (* 8 element stores = one line's worth: exactly one memory line, no
     fetch, nothing allocated. *)
  for i = 0 to 7 do
    Hierarchy.write_nt h ~addr:(i * 8)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "no fetch" 0 c.Hierarchy.mem_loads;
  Alcotest.(check int) "one line to memory" 1 (Hierarchy.traffic_lines h ~level:2);
  Alcotest.(check int) "no L1 fill" 0 (Hierarchy.traffic_lines h ~level:0);
  Alcotest.(check int) "counted" 8 c.Hierarchy.nt_stores;
  (* A resident copy is invalidated (Intel MOVNT semantics): the next
     load of the line misses. *)
  Hierarchy.flush h;
  Hierarchy.read h ~addr:4096;
  Hierarchy.reset_counters h;
  for i = 0 to 7 do
    Hierarchy.write_nt h ~addr:(4096 + (i * 8))
  done;
  Alcotest.(check int) "streamed line" 1 (Hierarchy.traffic_lines h ~level:2);
  Hierarchy.read h ~addr:4096;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "copy was invalidated" 1 c.Hierarchy.misses.(0)

let extra_suite =
  [ Alcotest.test_case "write hit no traffic" `Quick test_write_hit_no_traffic;
    Alcotest.test_case "traffic bytes" `Quick test_traffic_bytes;
    Alcotest.test_case "streaming stores" `Quick test_write_nt ]

let suite = base_suite @ extra_suite
