open Yasksite

let machine = Machine.test_chip

let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt

let test_kernel_validation () =
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Yasksite.kernel: dims rank mismatch") (fun () ->
      ignore (kernel ~machine ~dims:[| 8 |] spec));
  Alcotest.check_raises "unresolved"
    (Invalid_argument "Yasksite.kernel: unresolved coefficient \"c\"")
    (fun () ->
      ignore (kernel ~machine ~dims:[| 8; 8 |] Stencil.Suite.heat_2d_5pt))

let test_predict_measure () =
  let k = kernel ~machine ~dims:[| 48; 48 |] spec in
  let config = Config.v ~threads:2 () in
  let p = predict k ~config in
  Alcotest.(check bool) "prediction positive" true (p.Model.lups_chip > 0.0);
  let m = measure k ~config in
  Alcotest.(check bool) "measurement positive" true
    (m.Yasksite_engine.Measure.lups_chip > 0.0)

let test_autotune () =
  let k = kernel ~machine ~dims:[| 48; 48 |] spec in
  let config, p = autotune k ~threads:2 in
  Alcotest.(check int) "threads" 2 config.Config.threads;
  let naive = predict k ~config:(Config.v ~threads:2 ()) in
  Alcotest.(check bool) "tuned at least naive" true
    (p.Model.lups_chip >= naive.Model.lups_chip)

let test_report () =
  let k = kernel ~machine ~dims:[| 32; 32 |] spec in
  let s = report k ~config:(Config.v ()) in
  Alcotest.(check bool) "mentions prediction" true
    (Astring_contains.contains s "predicted");
  Alcotest.(check bool) "mentions measurement" true
    (Astring_contains.contains s "measured");
  Alcotest.(check bool) "mentions machine" true
    (Astring_contains.contains s "TestChip")

let test_version () =
  Alcotest.(check bool) "non-empty" true (String.length version > 0)

let test_facade_exports () =
  (* The facade re-exports the auxiliary subsystems. *)
  (match Machine_file.parse (Machine_file.render Machine.test_chip) with
  | Ok m -> Alcotest.(check string) "machine file" "TestChip" m.Machine.name
  | Error e -> Alcotest.fail e);
  (match Stencil.Parser.parse_expr ~rank:1 "f0(x-1) + f0(x+1)" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let info = Stencil.Analysis.of_spec spec in
  let rl = Yasksite_ecm.Roofline.predict machine info ~threads:1 in
  Alcotest.(check bool) "roofline reachable" true
    (rl.Yasksite_ecm.Roofline.lups_single > 0.0)

let test_explain_via_facade () =
  let k = kernel ~machine ~dims:[| 32; 32 |] spec in
  let p = predict k ~config:(Config.v ()) in
  let s = Model.explain machine k.info p in
  Alcotest.(check bool) "explain mentions composition" true
    (Astring_contains.contains s "composition")

let suite =
  [ Alcotest.test_case "kernel validation" `Quick test_kernel_validation;
    Alcotest.test_case "facade exports" `Quick test_facade_exports;
    Alcotest.test_case "explain via facade" `Quick test_explain_via_facade;
    Alcotest.test_case "predict/measure" `Quick test_predict_measure;
    Alcotest.test_case "autotune" `Quick test_autotune;
    Alcotest.test_case "report" `Quick test_report;
    Alcotest.test_case "version" `Quick test_version ]
