module Grid = Yasksite_grid.Grid
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let test_create_validation () =
  Alcotest.check_raises "rank 0" (Invalid_argument "Grid.create: rank must be 1..3")
    (fun () -> ignore (Grid.create ~dims:[||] ()));
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Grid.create: non-positive extent") (fun () ->
      ignore (Grid.create ~dims:[| 4; 0 |] ()));
  Alcotest.check_raises "halo rank"
    (Invalid_argument "Grid.create: halo rank mismatch") (fun () ->
      ignore (Grid.create ~halo:[| 1 |] ~dims:[| 4; 4 |] ()))

let test_get_set_roundtrip () =
  let g = Grid.create ~halo:[| 1; 2; 1 |] ~dims:[| 3; 4; 5 |] () in
  Grid.set g [| 1; 2; 3 |] 42.0;
  Alcotest.(check (float 0.0)) "roundtrip" 42.0 (Grid.get g [| 1; 2; 3 |]);
  Grid.set g [| -1; -2; -1 |] 7.0;
  Alcotest.(check (float 0.0)) "halo roundtrip" 7.0 (Grid.get g [| -1; -2; -1 |]);
  Alcotest.check_raises "oob"
    (Invalid_argument "Grid.offset_of: coordinate 4 out of range in dim 0")
    (fun () -> ignore (Grid.get g [| 4; 0; 0 |]))

(* Derive a deterministic random grid shape from a seed. *)
let shape_of_seed seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let dims = Array.init rank (fun _ -> 2 + Prng.int rng ~bound:7) in
  let halo = Array.init rank (fun _ -> Prng.int rng ~bound:3) in
  let layout =
    if Prng.bool rng then Grid.Linear
    else Grid.Folded (Array.init rank (fun _ -> 1 + Prng.int rng ~bound:3))
  in
  (rng, rank, dims, halo, layout)

let offsets_bijective =
  QCheck.Test.make ~name:"offset_of is injective over the halo box" ~count:100
    QCheck.small_int (fun seed ->
      let _, rank, dims, halo, layout = shape_of_seed seed in
      let g = Grid.create ~halo ~layout ~dims () in
      let seen = Hashtbl.create 97 in
      let ok = ref true in
      let idx = Array.make rank 0 in
      let rec go d =
        if d = rank then begin
          let o = Grid.offset_of g idx in
          if o < 0 || o >= Grid.length g || Hashtbl.mem seen o then ok := false
          else Hashtbl.add seen o ()
        end
        else
          for i = -halo.(d) to dims.(d) + halo.(d) - 1 do
            idx.(d) <- i;
            go (d + 1)
          done
      in
      go 0;
      !ok)

let indexers_match_offset_of =
  QCheck.Test.make ~name:"indexerN agrees with offset_of" ~count:100
    QCheck.small_int (fun seed ->
      let rng, rank, dims, halo, layout = shape_of_seed seed in
      let g = Grid.create ~halo ~layout ~dims () in
      let ok = ref true in
      for _ = 1 to 50 do
        let idx =
          Array.init rank (fun i ->
              Prng.int rng ~bound:(dims.(i) + (2 * halo.(i))) - halo.(i))
        in
        let reference = Grid.offset_of g idx in
        let fast =
          match rank with
          | 1 -> Grid.indexer1 g idx.(0)
          | 2 -> Grid.indexer2 g idx.(0) idx.(1)
          | _ -> Grid.indexer3 g idx.(0) idx.(1) idx.(2)
        in
        if fast <> reference then ok := false
      done;
      !ok)

let test_fold_alignment () =
  (* The interior origin must start a fold block (YASK halo padding). *)
  let g =
    Grid.create ~halo:[| 1; 1; 1 |] ~layout:(Grid.Folded [| 2; 2; 2 |])
      ~dims:[| 6; 6; 6 |] ()
  in
  Alcotest.(check int) "origin block-aligned" 0
    (Grid.offset_of g [| 0; 0; 0 |] mod 8)

let test_fill_and_iter () =
  let g = Grid.create ~halo:[| 1; 1 |] ~dims:[| 3; 4 |] () in
  Grid.fill g ~f:(fun i -> float_of_int ((i.(0) * 10) + i.(1)));
  Alcotest.(check (float 0.0)) "value" 23.0 (Grid.get g [| 2; 3 |]);
  let count = ref 0 in
  Grid.iter_interior g ~f:(fun _ -> incr count);
  Alcotest.(check int) "iter count" 12 !count

let test_halo_dirichlet () =
  let g = Grid.create ~halo:[| 1; 1 |] ~dims:[| 3; 3 |] () in
  Grid.fill g ~f:(fun _ -> 1.0);
  Grid.halo_dirichlet g 9.0;
  Alcotest.(check (float 0.0)) "halo set" 9.0 (Grid.get g [| -1; 0 |]);
  Alcotest.(check (float 0.0)) "corner halo" 9.0 (Grid.get g [| -1; -1 |]);
  Alcotest.(check (float 0.0)) "interior intact" 1.0 (Grid.get g [| 1; 1 |])

let test_halo_periodic () =
  let g = Grid.create ~halo:[| 1 |] ~dims:[| 4 |] () in
  Grid.fill g ~f:(fun i -> float_of_int i.(0));
  Grid.halo_periodic g;
  Alcotest.(check (float 0.0)) "left wraps" 3.0 (Grid.get g [| -1 |]);
  Alcotest.(check (float 0.0)) "right wraps" 0.0 (Grid.get g [| 4 |]);
  Alcotest.check_raises "halo too wide"
    (Invalid_argument "Grid.halo_periodic: halo wider than interior")
    (fun () ->
      let bad = Grid.create ~halo:[| 3 |] ~dims:[| 2 |] () in
      Grid.halo_periodic bad)

let test_copy_across_layouts () =
  let a = Grid.create ~halo:[| 1; 1; 1 |] ~dims:[| 4; 4; 4 |] () in
  Grid.fill a ~f:(fun i -> float_of_int ((i.(0) * 100) + (i.(1) * 10) + i.(2)));
  let b =
    Grid.create ~halo:[| 1; 1; 1 |] ~layout:(Grid.Folded [| 1; 2; 4 |])
      ~dims:[| 4; 4; 4 |] ()
  in
  Grid.copy_interior ~src:a ~dst:b;
  Alcotest.(check (float 0.0)) "identical" 0.0 (Grid.max_abs_diff a b)

let test_norm () =
  let g = Grid.create ~dims:[| 2; 2 |] () in
  Grid.fill g ~f:(fun _ -> 3.0);
  Alcotest.(check (float 1e-12)) "l2" 6.0 (Grid.l2_norm g)

let test_addresses_disjoint () =
  Grid.reset_address_space ();
  let a = Grid.create ~dims:[| 8; 8 |] () in
  let b = Grid.create ~dims:[| 8; 8 |] () in
  let c = Grid.create ~dims:[| 8; 8 |] () in
  let a_end = Grid.base_address a + Grid.footprint_bytes a in
  let b_end = Grid.base_address b + Grid.footprint_bytes b in
  Alcotest.(check bool) "a/b disjoint" true (Grid.base_address b >= a_end);
  Alcotest.(check bool) "b/c disjoint" true (Grid.base_address c >= b_end);
  Alcotest.(check int) "line aligned" 0 (Grid.base_address b mod 64);
  (* Consecutive allocations are staggered across cache sets (YASK-style
     anti-aliasing padding). *)
  Alcotest.(check bool) "staggered sets" true
    (Grid.base_address a mod 4096 <> Grid.base_address b mod 4096)

let test_accessors () =
  let g =
    Grid.create ~halo:[| 1; 2 |] ~layout:(Grid.Folded [| 2; 2 |])
      ~dims:[| 4; 6 |] ()
  in
  Alcotest.(check int) "rank" 2 (Grid.rank g);
  Alcotest.(check (array int)) "dims" [| 4; 6 |] (Grid.dims g);
  Alcotest.(check (array int)) "halo" [| 1; 2 |] (Grid.halo g);
  Alcotest.(check bool) "layout" true
    (match Grid.layout g with Grid.Folded [| 2; 2 |] -> true | _ -> false);
  Alcotest.(check int) "footprint" (8 * Grid.length g) (Grid.footprint_bytes g);
  Grid.fill_all g 3.5;
  Alcotest.(check (float 0.0)) "fill_all halo" 3.5 (Grid.get g [| -1; -2 |])

let test_flat_access () =
  let g = Grid.create ~dims:[| 4 |] () in
  let off = Grid.offset_of g [| 2 |] in
  Grid.unsafe_set_flat g off 9.0;
  Alcotest.(check (float 0.0)) "flat roundtrip" 9.0 (Grid.unsafe_get_flat g off);
  Alcotest.(check (float 0.0)) "same as get" 9.0 (Grid.get g [| 2 |]);
  Alcotest.(check int) "byte address" (Grid.base_address g + (8 * off))
    (Grid.byte_address g [| 2 |])

let suite =
  [ Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "get/set roundtrip" `Quick test_get_set_roundtrip;
    qt offsets_bijective;
    qt indexers_match_offset_of;
    Alcotest.test_case "fold alignment" `Quick test_fold_alignment;
    Alcotest.test_case "fill and iter" `Quick test_fill_and_iter;
    Alcotest.test_case "halo dirichlet" `Quick test_halo_dirichlet;
    Alcotest.test_case "halo periodic" `Quick test_halo_periodic;
    Alcotest.test_case "copy across layouts" `Quick test_copy_across_layouts;
    Alcotest.test_case "l2 norm" `Quick test_norm;
    Alcotest.test_case "addresses disjoint" `Quick test_addresses_disjoint;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "flat access" `Quick test_flat_access ]
