open Yasksite_arch

let test_cache_level_validation () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Cache_level.v: size must be positive") (fun () ->
      ignore
        (Cache_level.v ~name:"L1" ~size_bytes:0 ~assoc:8 ~bytes_per_cycle:1.0
           ~latency_cycles:1.0 ()));
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Cache_level.v: size not divisible by assoc * line")
    (fun () ->
      ignore
        (Cache_level.v ~name:"L1" ~size_bytes:1000 ~assoc:8
           ~bytes_per_cycle:1.0 ~latency_cycles:1.0 ()))

let test_cache_level_derived () =
  let l =
    Cache_level.v ~name:"L1" ~size_bytes:32768 ~assoc:8 ~bytes_per_cycle:64.0
      ~latency_cycles:4.0 ()
  in
  Alcotest.(check int) "sets" 64 (Cache_level.n_sets l);
  Alcotest.(check int) "lines" 512 (Cache_level.lines l);
  Alcotest.(check int) "per-core" 32768 (Cache_level.per_core_size l);
  let s = Cache_level.scale ~factor:8 l in
  Alcotest.(check int) "scaled size" 4096 s.Cache_level.size_bytes;
  Alcotest.(check int) "scaled sets" 8 (Cache_level.n_sets s);
  Alcotest.(check int) "assoc kept" 8 s.Cache_level.assoc

let test_machine_presets () =
  let clx = Machine.cascade_lake in
  Alcotest.(check int) "clx cores" 20 clx.Machine.cores;
  Alcotest.(check int) "clx lanes" 8 clx.Machine.simd.Machine.dp_lanes;
  Alcotest.(check int) "clx levels" 3 (Machine.levels clx);
  Alcotest.(check int) "line" 64 (Machine.line_bytes clx);
  Alcotest.(check bool) "clx serial" true (clx.Machine.overlap = Machine.Serial);
  let rome = Machine.rome in
  Alcotest.(check int) "rome cores" 64 rome.Machine.cores;
  Alcotest.(check bool) "rome overlap" true
    (rome.Machine.overlap = Machine.Overlapping);
  Alcotest.(check bool) "rome L3 victim" true
    ((Machine.last_level rome).Cache_level.fill = Cache_level.Victim);
  Alcotest.(check int) "rome L3 ccx" 4
    (Machine.last_level rome).Cache_level.shared_by

let test_machine_derived () =
  let clx = Machine.cascade_lake in
  Alcotest.(check (float 1.0)) "peak flops/core" 80e9
    (Machine.peak_flops_core clx);
  Alcotest.(check (float 1.0)) "peak chip" 1600e9 (Machine.peak_flops_chip clx);
  Alcotest.(check (float 0.01)) "mem B/cy" 42.0
    (Machine.mem_bytes_per_cycle_chip clx)

let test_scaled () =
  let m = Machine.scaled ~factor:8 Machine.cascade_lake in
  Alcotest.(check int) "L1 scaled" 4096 m.Machine.caches.(0).Cache_level.size_bytes;
  Alcotest.(check int) "cores kept" 20 m.Machine.cores;
  Alcotest.(check string) "renamed" "CascadeLake-SP/8" m.Machine.name

let test_describe () =
  let s =
    Yasksite_util.Table.render (Machine.describe Machine.cascade_lake)
  in
  Alcotest.(check bool) "mentions cores" true (Astring_contains.contains s "cores");
  Alcotest.(check bool) "mentions L3" true (Astring_contains.contains s "L3")

let test_machine_validation () =
  Alcotest.check_raises "no caches"
    (Invalid_argument "Machine.v: need at least one cache level") (fun () ->
      ignore
        (Machine.v ~name:"x" ~vendor:Machine.Generic ~freq_ghz:1.0 ~cores:1
           ~simd:Machine.cascade_lake.Machine.simd ~caches:[]
           ~mem_bw_chip_gbs:1.0 ~mem_latency_cycles:1.0
           ~overlap:Machine.Serial))

let base_suite =
  [ Alcotest.test_case "cache level validation" `Quick test_cache_level_validation;
    Alcotest.test_case "cache level derived" `Quick test_cache_level_derived;
    Alcotest.test_case "machine presets" `Quick test_machine_presets;
    Alcotest.test_case "machine derived" `Quick test_machine_derived;
    Alcotest.test_case "machine scaled" `Quick test_scaled;
    Alcotest.test_case "machine describe" `Quick test_describe;
    Alcotest.test_case "machine validation" `Quick test_machine_validation ]

let test_machine_file_roundtrip () =
  List.iter
    (fun m ->
      match Machine_file.parse (Machine_file.render m) with
      | Error e -> Alcotest.fail (m.Machine.name ^ ": " ^ e)
      | Ok m' ->
          Alcotest.(check string) "name" m.Machine.name m'.Machine.name;
          Alcotest.(check int) "cores" m.Machine.cores m'.Machine.cores;
          Alcotest.(check int) "levels" (Machine.levels m) (Machine.levels m');
          Alcotest.(check bool) "caches equal" true
            (m.Machine.caches = m'.Machine.caches);
          Alcotest.(check bool) "simd equal" true (m.Machine.simd = m'.Machine.simd);
          Alcotest.(check (float 1e-9)) "bw" m.Machine.mem_bw_chip_gbs
            m'.Machine.mem_bw_chip_gbs)
    [ Machine.cascade_lake; Machine.rome; Machine.test_chip ]

let test_machine_file_parse () =
  let src = {|
# comment
name = Custom
vendor = amd
freq_ghz = 3.5
cores = 8
dp_lanes = 4
fma_ports = 2
mem_bw_gbs = 80
overlap = overlapping

[cache]
name = L1
size_kib = 48
assoc = 12
bytes_per_cycle = 32
latency_cycles = 5

[cache]
name = L2
size_kib = 1024
assoc = 16
shared_by = 2
fill = victim
bytes_per_cycle = 16
latency_cycles = 14
|} in
  match Machine_file.parse src with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check string) "name" "Custom" m.Machine.name;
      Alcotest.(check bool) "vendor" true (m.Machine.vendor = Machine.Amd);
      Alcotest.(check int) "levels" 2 (Machine.levels m);
      Alcotest.(check int) "L1 size" (48 * 1024)
        m.Machine.caches.(0).Cache_level.size_bytes;
      Alcotest.(check bool) "L2 victim" true
        (m.Machine.caches.(1).Cache_level.fill = Cache_level.Victim);
      Alcotest.(check bool) "defaults applied" true
        (m.Machine.simd.Machine.load_ports = 2)

let test_machine_file_errors () =
  let expect_error src frag =
    match Machine_file.parse src with
    | Ok _ -> Alcotest.fail ("should not parse: " ^ frag)
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %S" e frag)
          true
          (Astring_contains.contains e frag)
  in
  expect_error "name = X\n" "no [cache]";
  expect_error "name\n" "key = value";
  expect_error
    "name = X\nvendor = martian\nfreq_ghz = 1\ncores = 1\ndp_lanes = 4\n\
     fma_ports = 1\nmem_bw_gbs = 10\n[cache]\nname = L1\nsize_kib = 4\n\
     assoc = 4\nbytes_per_cycle = 8\nlatency_cycles = 2\n"
    "vendor";
  expect_error
    "vendor = intel\nfreq_ghz = 1\ncores = 1\ndp_lanes = 4\nfma_ports = 1\n\
     mem_bw_gbs = 10\n[cache]\nname = L1\nsize_kib = 4\nassoc = 4\n\
     bytes_per_cycle = 8\nlatency_cycles = 2\n"
    "name";
  expect_error
    "name = X\nfreq_ghz = zoom\ncores = 1\ndp_lanes = 4\nfma_ports = 1\n\
     mem_bw_gbs = 10\n[cache]\nname = L1\nsize_kib = 4\nassoc = 4\n\
     bytes_per_cycle = 8\nlatency_cycles = 2\n"
    "not a number"

let extra_suite =
  [ Alcotest.test_case "machine file round-trip" `Quick
      test_machine_file_roundtrip;
    Alcotest.test_case "machine file parse" `Quick test_machine_file_parse;
    Alcotest.test_case "machine file errors" `Quick test_machine_file_errors ]

let suite = base_suite @ extra_suite
