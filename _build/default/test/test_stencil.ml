open Yasksite_stencil
module Grid = Yasksite_grid.Grid
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let test_heat3d_analysis () =
  let a = Analysis.of_spec Suite.heat_3d_7pt in
  Alcotest.(check int) "loads" 7 a.Analysis.loads;
  Alcotest.(check int) "stores" 1 a.Analysis.stores;
  Alcotest.(check int) "adds" 6 a.Analysis.adds;
  Alcotest.(check int) "muls" 2 a.Analysis.muls;
  Alcotest.(check int) "flops" 8 a.Analysis.flops;
  Alcotest.(check bool) "star" true (a.Analysis.shape = Analysis.Star);
  Alcotest.(check (array int)) "radius" [| 1; 1; 1 |] a.Analysis.radius;
  Alcotest.(check (float 1e-12)) "balance" 24.0 (Analysis.min_code_balance a)

let test_box27_analysis () =
  let a = Analysis.of_spec Suite.box_3d_27pt in
  Alcotest.(check int) "loads" 27 a.Analysis.loads;
  Alcotest.(check bool) "box" true (a.Analysis.shape = Analysis.Box);
  Alcotest.(check int) "adds" 26 a.Analysis.adds;
  Alcotest.(check int) "muls" 1 a.Analysis.muls

let test_star_r2_analysis () =
  let a = Analysis.of_spec Suite.star_3d_r2 in
  Alcotest.(check int) "loads" 13 a.Analysis.loads;
  Alcotest.(check (array int)) "radius" [| 2; 2; 2 |] a.Analysis.radius;
  Alcotest.(check bool) "star" true (a.Analysis.shape = Analysis.Star)

let test_varcoef_analysis () =
  let a = Analysis.of_spec Suite.varcoef_3d_7pt in
  Alcotest.(check int) "n_fields" 2 a.Analysis.spec.Spec.n_fields;
  Alcotest.(check (list int)) "read fields" [ 0; 1 ] a.Analysis.read_fields;
  Alcotest.(check (float 1e-12)) "balance" 32.0 (Analysis.min_code_balance a);
  Alcotest.(check int) "field-1 accesses" 1
    (List.length (Analysis.accesses_of_field a 1))

let test_point_shape () =
  let a = Analysis.of_spec Suite.copy_1d in
  Alcotest.(check bool) "point" true (a.Analysis.shape = Analysis.Point);
  Alcotest.(check int) "flops" 0 a.Analysis.flops

let test_spec_validation () =
  Alcotest.check_raises "rank" (Invalid_argument "Spec: rank must be 1..3")
    (fun () -> ignore (Spec.v ~name:"x" ~rank:4 (Dsl.fld [ 0; 0; 0; 0 ])));
  Alcotest.check_raises "access rank"
    (Invalid_argument "Spec: access rank mismatch") (fun () ->
      ignore (Spec.v ~name:"x" ~rank:2 (Dsl.fld [ 0 ])));
  Alcotest.check_raises "field range"
    (Invalid_argument "Spec: field index out of range") (fun () ->
      ignore (Spec.v ~name:"x" ~rank:1 (Dsl.fld ~field:1 [ 0 ])));
  Alcotest.check_raises "no access"
    (Invalid_argument "Spec: expression reads no field") (fun () ->
      ignore (Spec.v ~name:"x" ~rank:1 (Dsl.c 1.0)))

let test_coeffs () =
  let names = Expr.coeff_names Suite.heat_3d_7pt.Spec.expr in
  Alcotest.(check (list string)) "names" [ "c"; "r" ] names;
  let resolved = Spec.resolve Suite.heat_3d_7pt [ ("r", 0.1); ("c", 0.4) ] in
  Alcotest.(check (list string)) "resolved" []
    (Expr.coeff_names resolved.Spec.expr)

let test_to_c () =
  let s = Spec.to_c (Suite.resolve_defaults Suite.heat_2d_5pt) in
  Alcotest.(check bool) "loop vars" true (Astring_contains.contains s "for (int y");
  Alcotest.(check bool) "access" true (Astring_contains.contains s "f0(y-1,x)")

let test_compile_heat1d () =
  let spec = Spec.resolve Suite.heat_1d_3pt [ ("r", 0.25); ("c", 0.5) ] in
  let g = Grid.create ~halo:[| 1 |] ~dims:[| 5 |] () in
  Grid.fill g ~f:(fun i -> float_of_int i.(0));
  Grid.halo_dirichlet g 0.0;
  let eval = Compile.compile1 spec ~inputs:[| g |] in
  (* at x=2: 0.25*(1+3) + 0.5*2 = 2.0 *)
  Alcotest.(check (float 1e-12)) "interior" 2.0 (eval 2);
  (* at x=0: 0.25*(halo 0 + 1) + 0 = 0.25 *)
  Alcotest.(check (float 1e-12)) "boundary" 0.25 (eval 0)

let test_compile_unresolved () =
  let g = Grid.create ~halo:[| 1 |] ~dims:[| 4 |] () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Compile.compile1 Suite.heat_1d_3pt ~inputs:[| g |] : int -> float);
       false
     with Compile.Unresolved_coefficient "c" | Compile.Unresolved_coefficient "r" ->
       true)

let test_compile_halo_check () =
  let g = Grid.create ~dims:[| 4 |] () in
  let spec = Spec.resolve Suite.heat_1d_3pt [ ("r", 0.25); ("c", 0.5) ] in
  Alcotest.(check bool) "halo too small" true
    (try
       ignore (Compile.compile1 spec ~inputs:[| g |] : int -> float);
       false
     with Invalid_argument _ -> true)

let test_suite_resolves () =
  List.iter
    (fun spec ->
      let r = Suite.resolve_defaults spec in
      Alcotest.(check (list string))
        (spec.Spec.name ^ " fully resolved")
        []
        (Expr.coeff_names r.Spec.expr))
    Suite.all

let test_suite_find () =
  Alcotest.(check string) "find" "heat-3d-7pt"
    (Suite.find "heat-3d-7pt").Spec.name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Suite.find "nope"))

let gen_specs_valid =
  QCheck.Test.make ~name:"generated stencils are valid and analysable"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 1 + Prng.int rng ~bound:3 in
      let spec = Gen.spec rng ~rank () in
      let a = Analysis.of_spec spec in
      a.Analysis.loads >= 1
      && Array.for_all (fun r -> r <= 2) a.Analysis.radius
      && a.Analysis.read_fields = [ 0 ]
      && Expr.coeff_names spec.Spec.expr = [])

let test_subst_and_map () =
  let e = Expr.Add (Expr.Coeff "a", Expr.Ref { field = 0; offsets = [| 1 |] }) in
  let e' = Expr.subst_coeffs (fun _ -> Some 2.0) e in
  Alcotest.(check bool) "substituted" true
    (match e' with Expr.Add (Expr.Const 2.0, _) -> true | _ -> false);
  let shifted =
    Expr.map_accesses
      (fun a -> { a with Expr.offsets = Array.map (( + ) 1) a.Expr.offsets })
      e
  in
  Alcotest.(check bool) "shifted" true
    (match shifted with
    | Expr.Add (_, Expr.Ref { offsets = [| 2 |]; _ }) -> true
    | _ -> false)

let base_suite =
  [ Alcotest.test_case "heat3d analysis" `Quick test_heat3d_analysis;
    Alcotest.test_case "box27 analysis" `Quick test_box27_analysis;
    Alcotest.test_case "star r2 analysis" `Quick test_star_r2_analysis;
    Alcotest.test_case "varcoef analysis" `Quick test_varcoef_analysis;
    Alcotest.test_case "point shape" `Quick test_point_shape;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "coefficients" `Quick test_coeffs;
    Alcotest.test_case "to_c rendering" `Quick test_to_c;
    Alcotest.test_case "compile heat1d" `Quick test_compile_heat1d;
    Alcotest.test_case "compile unresolved" `Quick test_compile_unresolved;
    Alcotest.test_case "compile halo check" `Quick test_compile_halo_check;
    Alcotest.test_case "suite resolves" `Quick test_suite_resolves;
    Alcotest.test_case "suite find" `Quick test_suite_find;
    qt gen_specs_valid;
    Alcotest.test_case "expr subst/map" `Quick test_subst_and_map ]

let test_parser_basic () =
  let e = Parser.parse_expr ~rank:1 "0.25*(f0(x-1) + f0(x+1)) + 0.5*f0(x)" in
  match e with
  | Error m -> Alcotest.fail m
  | Ok e ->
      let g = Grid.create ~halo:[| 1 |] ~dims:[| 4 |] () in
      Grid.fill g ~f:(fun i -> float_of_int i.(0));
      Grid.halo_dirichlet g 0.0;
      let spec =
        match Parser.parse_spec ~name:"t" ~rank:1 "f0(x)" with
        | Ok s -> Spec.with_expr s e
        | Error m -> Alcotest.fail m
      in
      let eval = Compile.compile1 spec ~inputs:[| g |] in
      (* at x=2: 0.25*(1+3) + 0.5*2 = 2.0 *)
      Alcotest.(check (float 1e-12)) "evaluates" 2.0 (eval 2)

let test_parser_coefficients () =
  match Parser.parse_expr ~rank:2 "r * f0(y-1,x) + c * f0(y,x)" with
  | Error m -> Alcotest.fail m
  | Ok e ->
      Alcotest.(check (list string)) "coeffs" [ "c"; "r" ] (Expr.coeff_names e)

let test_parser_multifield () =
  match Parser.parse_spec ~name:"mf" ~rank:1 "f0(x) + f2(x+1)" with
  | Error m -> Alcotest.fail m
  | Ok s -> Alcotest.(check int) "fields inferred" 3 s.Spec.n_fields

let test_parser_errors () =
  let expect_error src =
    match Parser.parse_expr ~rank:2 src with
    | Ok _ -> Alcotest.fail (src ^ " should not parse")
    | Error m ->
        Alcotest.(check bool) "position in message" true
          (Astring_contains.contains m "at ")
  in
  expect_error "f0(y,x";
  expect_error "f0(x,y)" (* axes out of order *);
  expect_error "1 + ";
  expect_error "g0(y,x)" (* unknown function *);
  expect_error "f0(y,x) extra";
  expect_error "f0(w,x)" (* unknown axis *);
  expect_error "@";
  match Parser.parse_expr ~rank:9 "f0(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rank 9 accepted"

let parser_roundtrip =
  QCheck.Test.make ~name:"to_c / parse round-trip" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 1 + Prng.int rng ~bound:3 in
      let spec = Gen.spec rng ~rank () in
      let printed = Expr.to_c spec.Spec.expr in
      match Parser.parse_expr ~rank printed with
      | Error _ -> false
      | Ok e -> Expr.to_c e = printed)

let test_parser_suite_roundtrip () =
  List.iter
    (fun spec ->
      let spec = Suite.resolve_defaults spec in
      let printed = Expr.to_c spec.Spec.expr in
      match Parser.parse_expr ~rank:spec.Spec.rank printed with
      | Error m -> Alcotest.fail (spec.Spec.name ^ ": " ^ m)
      | Ok e ->
          Alcotest.(check string) (spec.Spec.name ^ " round-trips") printed
            (Expr.to_c e))
    Suite.all

let extra_suite =
  [ Alcotest.test_case "parser basic" `Quick test_parser_basic;
    Alcotest.test_case "parser coefficients" `Quick test_parser_coefficients;
    Alcotest.test_case "parser multifield" `Quick test_parser_multifield;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    qt parser_roundtrip;
    Alcotest.test_case "parser suite round-trip" `Quick
      test_parser_suite_roundtrip ]



let parser_never_crashes =
  QCheck.Test.make ~name:"parser total on random input" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 40))
    (fun src ->
      match Parser.parse_expr ~rank:2 src with
      | Ok _ | Error _ -> true)

let test_parser_numbers () =
  (* Scientific notation and fractions survive the lexer. *)
  match Parser.parse_expr ~rank:1 "1.5e-3 * f0(x) + 2E+2 * f0(x+1)" with
  | Error m -> Alcotest.fail m
  | Ok e -> (
      match e with
      | Expr.Add (Expr.Mul (Expr.Const a, _), Expr.Mul (Expr.Const b, _)) ->
          Alcotest.(check (float 1e-12)) "mantissa" 0.0015 a;
          Alcotest.(check (float 1e-9)) "exponent" 200.0 b
      | _ -> Alcotest.fail "unexpected shape")

let test_parser_bare_coords () =
  match Parser.parse_expr ~rank:2 "f0(-1, 2)" with
  | Error m -> Alcotest.fail m
  | Ok (Expr.Ref { offsets; _ }) ->
      Alcotest.(check (array int)) "offsets" [| -1; 2 |] offsets
  | Ok _ -> Alcotest.fail "expected a single access"

let test_describe_row () =
  let row = Analysis.describe (Analysis.of_spec Suite.heat_3d_7pt) in
  Alcotest.(check int) "8 columns" 8 (List.length row);
  Alcotest.(check string) "name" "heat-3d-7pt" (List.hd row)

let parser_extra =
  [ qt parser_never_crashes;
    Alcotest.test_case "parser numbers" `Quick test_parser_numbers;
    Alcotest.test_case "parser bare coords" `Quick test_parser_bare_coords;
    Alcotest.test_case "describe row" `Quick test_describe_row ]

let suite = base_suite @ extra_suite @ parser_extra
