open Yasksite_ode
module Grid = Yasksite_grid.Grid

let check_float = Alcotest.(check (float 1e-9))

let test_tableau_validation () =
  Alcotest.check_raises "not explicit"
    (Invalid_argument "Tableau.v: method is not explicit") (fun () ->
      ignore
        (Tableau.v ~name:"implicit"
           ~a:[| [| 1.0 |] |]
           ~b:[| 1.0 |] ~c:[| 0.5 |] ~order:1 ()));
  Alcotest.check_raises "dimension"
    (Invalid_argument "Tableau.v: dimension mismatch") (fun () ->
      ignore
        (Tableau.v ~name:"bad"
           ~a:[| [| 0.0 |] |]
           ~b:[| 1.0 |] ~c:[| 0.0; 1.0 |] ~order:1 ()))

let test_order_conditions () =
  List.iter
    (fun (t : Tableau.t) ->
      check_float (t.Tableau.name ^ " weights") 0.0 (Tableau.weight_check t);
      let p = min t.Tableau.order 4 in
      Alcotest.(check bool)
        (Printf.sprintf "%s satisfies order-%d conditions" t.Tableau.name p)
        true
        (Tableau.order_residual t p < 1e-12))
    Tableau.all

let test_order_conditions_sharp () =
  (* Euler does NOT satisfy order-2 conditions; RK4 does not satisfy
     order-4 conditions beyond its design order... it does satisfy 4; but
     not 4+ (not checkable here). Check sharpness for low orders. *)
  Alcotest.(check bool) "euler fails order 2" true
    (Tableau.order_residual Tableau.euler 2 > 0.1);
  Alcotest.(check bool) "heun fails order 3" true
    (Tableau.order_residual Tableau.heun2 3 > 0.01)

let test_pirk () =
  let p = Tableau.pirk ~stages:2 ~iterations:3 in
  Alcotest.(check int) "stages" 8 p.Tableau.s;
  Alcotest.(check int) "order" 4 p.Tableau.order;
  Alcotest.(check bool) "order-4 conditions" true
    (Tableau.order_residual p 4 < 1e-12);
  let p1 = Tableau.pirk ~stages:1 ~iterations:1 in
  Alcotest.(check int) "midpoint-order" 2 p1.Tableau.order;
  Alcotest.(check bool) "order-2 conditions" true
    (Tableau.order_residual p1 2 < 1e-12)

let test_integrate_accuracy () =
  let ivp = Ivp.exp_decay ~lambda:2.0 in
  let y = Rk.integrate Tableau.rk4 ivp ~steps:100 in
  Alcotest.(check bool) "rk4 accurate" true (Ivp.error_vs_exact ivp ~y < 1e-9);
  let y_e = Rk.integrate Tableau.euler ivp ~steps:100 in
  Alcotest.(check bool) "euler much worse" true
    (Ivp.error_vs_exact ivp ~y:y_e > 1e-4)

let observed tab ivp = Rk.observed_order tab ivp

let test_observed_orders () =
  let ivp = Ivp.harmonic ~omega:2.0 in
  let check name tab expected =
    let got = observed tab ivp in
    Alcotest.(check bool)
      (Printf.sprintf "%s order ~%d (got %.2f)" name expected got)
      true
      (abs_float (got -. float_of_int expected) < 0.5)
  in
  check "euler" Tableau.euler 1;
  check "heun2" Tableau.heun2 2;
  check "kutta3" Tableau.kutta3 3;
  check "rk4" Tableau.rk4 4;
  check "kutta38" Tableau.kutta38 4;
  check "pirk-2-3" (Tableau.pirk ~stages:2 ~iterations:3) 4

let test_adaptive () =
  let ivp = Ivp.harmonic ~omega:3.0 in
  let y, stats = Rk.integrate_adaptive Tableau.dopri5 ivp ~rtol:1e-8 ~atol:1e-10 in
  Alcotest.(check bool) "accurate" true (Ivp.error_vs_exact ivp ~y < 1e-6);
  Alcotest.(check bool) "did steps" true (stats.Rk.accepted > 10);
  Alcotest.(check bool) "h varied" true (stats.Rk.h_max >= stats.Rk.h_min);
  Alcotest.(check bool) "needs embedded pair" true
    (try
       ignore (Rk.integrate_adaptive Tableau.rk4 ivp ~rtol:1e-6 ~atol:1e-8);
       false
     with Invalid_argument _ -> true)

let test_adams_bashforth () =
  let ivp = Ivp.exp_decay ~lambda:1.5 in
  let err order steps =
    Ivp.error_vs_exact ivp ~y:(Rk.adams_bashforth ~order ivp ~steps)
  in
  List.iter
    (fun order ->
      let ratio = err order 32 /. err order 64 in
      let got = log ratio /. log 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "AB%d converges at order ~%d (got %.2f)" order order got)
        true
        (abs_float (got -. float_of_int order) < 0.6))
    [ 2; 3; 4 ]

let test_ivp_library () =
  let d = Ivp.diagonal ~lambdas:[| 1.0; 2.0; 3.0 |] in
  let y = Rk.integrate Tableau.rk4 d ~steps:50 in
  Alcotest.(check bool) "diagonal accurate" true (Ivp.error_vs_exact d ~y < 1e-6);
  let b = Ivp.brusselator in
  let y = Rk.integrate Tableau.rk4 b ~steps:200 in
  Alcotest.(check bool) "brusselator finite" true
    (Array.for_all (fun v -> Float.is_finite v) y);
  Alcotest.check_raises "no exact"
    (Invalid_argument "Ivp.error_vs_exact: no exact solution") (fun () ->
      ignore (Ivp.error_vs_exact b ~y))

let test_heat_convergence_in_space () =
  (* Error against the analytic PDE solution is dominated by the O(dx^2)
     spatial discretisation; quadrupling n should cut it ~16x. *)
  let solve n =
    let p = Pde.heat ~rank:1 ~n ~alpha:1.0 in
    let t_end = 0.005 in
    let ivp = Pde.to_ivp p ~t_end in
    let steps = 400 in
    let y = Rk.integrate Tableau.rk4 ivp ~steps in
    Ivp.error_vs_exact ivp ~y
  in
  let e1 = solve 10 and e2 = solve 40 in
  Alcotest.(check bool)
    (Printf.sprintf "spatial order ~2 (e10=%.2e e40=%.2e)" e1 e2)
    true
    (e1 /. e2 > 8.0)

let test_heat3d_ivp () =
  let p = Pde.heat ~rank:3 ~n:6 ~alpha:1.0 in
  let ivp = Pde.to_ivp p ~t_end:0.002 in
  Alcotest.(check int) "dim" 216 ivp.Ivp.dim;
  let y = Rk.integrate Tableau.rk4 ivp ~steps:50 in
  Alcotest.(check bool) "accurate-ish" true (Ivp.error_vs_exact ivp ~y < 0.05)

let test_advection () =
  let p = Pde.advection_1d ~n:64 ~velocity:1.0 in
  let g = Pde.init_grid p in
  Alcotest.(check (float 1e-12)) "init matches exact at t=0" 0.0
    (Pde.grid_error_vs_exact p ~tm:0.0 g);
  (* Integrate one full period: upwind diffuses but stays bounded. *)
  let ivp = Pde.to_ivp p ~t_end:0.5 in
  let y = Rk.integrate Tableau.rk4 ivp ~steps:200 in
  Alcotest.(check bool) "bounded" true
    (Array.for_all (fun v -> abs_float v <= 1.1) y)

let test_boundaries () =
  let p = Pde.heat ~rank:2 ~n:8 ~alpha:1.0 in
  let g = Pde.init_grid p in
  Alcotest.(check (float 0.0)) "dirichlet halo" 0.0 (Grid.get g [| -1; 3 |]);
  let a = Pde.advection_1d ~n:8 ~velocity:1.0 in
  let ga = Pde.init_grid a in
  Alcotest.(check (float 1e-12)) "periodic halo" (Grid.get ga [| 7 |])
    (Grid.get ga [| -1 |])

let test_pde_validation () =
  Alcotest.check_raises "rank" (Invalid_argument "Pde.heat: rank must be 1..3")
    (fun () -> ignore (Pde.heat ~rank:0 ~n:8 ~alpha:1.0));
  Alcotest.check_raises "velocity"
    (Invalid_argument "Pde.advection_1d: velocity must be > 0") (fun () ->
      ignore (Pde.advection_1d ~n:8 ~velocity:(-1.0)))

let base_suite =
  [ Alcotest.test_case "tableau validation" `Quick test_tableau_validation;
    Alcotest.test_case "order conditions" `Quick test_order_conditions;
    Alcotest.test_case "order conditions sharp" `Quick
      test_order_conditions_sharp;
    Alcotest.test_case "pirk construction" `Quick test_pirk;
    Alcotest.test_case "integrate accuracy" `Quick test_integrate_accuracy;
    Alcotest.test_case "observed orders" `Quick test_observed_orders;
    Alcotest.test_case "adaptive stepping" `Quick test_adaptive;
    Alcotest.test_case "adams-bashforth" `Quick test_adams_bashforth;
    Alcotest.test_case "ivp library" `Quick test_ivp_library;
    Alcotest.test_case "heat spatial convergence" `Quick
      test_heat_convergence_in_space;
    Alcotest.test_case "heat3d ivp" `Quick test_heat3d_ivp;
    Alcotest.test_case "advection" `Quick test_advection;
    Alcotest.test_case "pde boundaries" `Quick test_boundaries;
    Alcotest.test_case "pde validation" `Quick test_pde_validation ]

let test_stability_polynomial () =
  let p = Tableau.stability_polynomial Tableau.rk4 in
  let expect = [| 1.0; 1.0; 0.5; 1.0 /. 6.0; 1.0 /. 24.0 |] in
  Array.iteri
    (fun i c -> check_float (Printf.sprintf "rk4 c%d" i) expect.(i) c)
    p;
  (* A method of order p has c_k = 1/k! for k <= p. *)
  let fact = [| 1.0; 1.0; 2.0; 6.0; 24.0; 120.0 |] in
  List.iter
    (fun (t : Tableau.t) ->
      let cs = Tableau.stability_polynomial t in
      for k = 0 to min t.Tableau.order 5 do
        Alcotest.(check (float 1e-10))
          (Printf.sprintf "%s c%d = 1/%d!" t.Tableau.name k k)
          (1.0 /. fact.(k))
          cs.(k)
      done)
    Tableau.all

let test_stability_interval () =
  let check name tab lo hi =
    let x = Tableau.real_stability_interval tab in
    Alcotest.(check bool)
      (Printf.sprintf "%s stability in [%.2f, %.2f] (got %.3f)" name lo hi x)
      true
      (x >= lo && x <= hi)
  in
  check "euler" Tableau.euler 1.99 2.01;
  check "heun2" Tableau.heun2 1.99 2.01;
  check "kutta3" Tableau.kutta3 2.50 2.53;
  check "rk4" Tableau.rk4 2.78 2.80;
  check "kutta38" Tableau.kutta38 2.78 2.80;
  check "dopri5" Tableau.dopri5 3.0 3.6

let test_fisher_kpp () =
  let p = Pde.fisher_kpp ~rank:1 ~n:32 ~diffusion:1e-3 ~rate:1.0 in
  let a = Yasksite_stencil.Analysis.of_spec p.Pde.spec in
  (* The nonlinear term u*u adds a multiplication of two field reads. *)
  Alcotest.(check bool) "nonlinear muls" true (a.Yasksite_stencil.Analysis.muls >= 3);
  let ivp = Pde.to_ivp p ~t_end:0.5 in
  let y = Rk.integrate Tableau.rk4 ivp ~steps:200 in
  Alcotest.(check bool) "solution stays in [0, 1.05]" true
    (Array.for_all (fun v -> v >= -1e-9 && v <= 1.05) y);
  (* Logistic growth: mass increases from the initial bump. *)
  let mass a = Array.fold_left ( +. ) 0.0 a in
  Alcotest.(check bool) "mass grows" true (mass y > mass ivp.Ivp.y0);
  Alcotest.check_raises "diffusion positive"
    (Invalid_argument "Pde.fisher_kpp: diffusion must be > 0") (fun () ->
      ignore (Pde.fisher_kpp ~rank:1 ~n:8 ~diffusion:0.0 ~rate:1.0))

let extra_suite =
  [ Alcotest.test_case "stability polynomial" `Quick test_stability_polynomial;
    Alcotest.test_case "stability interval" `Quick test_stability_interval;
    Alcotest.test_case "fisher-kpp" `Quick test_fisher_kpp ]

let test_rk_validation () =
  let ivp = Ivp.exp_decay ~lambda:1.0 in
  Alcotest.check_raises "steps positive"
    (Invalid_argument "Rk.integrate: steps must be positive") (fun () ->
      ignore (Rk.integrate Tableau.rk4 ivp ~steps:0));
  Alcotest.check_raises "ab order"
    (Invalid_argument "Rk.adams_bashforth: orders 2..4 supported") (fun () ->
      ignore (Rk.adams_bashforth ~order:7 ivp ~steps:16));
  Alcotest.check_raises "ab steps"
    (Invalid_argument "Rk.adams_bashforth: too few steps") (fun () ->
      ignore (Rk.adams_bashforth ~order:4 ivp ~steps:2));
  Alcotest.check_raises "ivp empty" (Invalid_argument "Ivp.v: empty state")
    (fun () ->
      ignore (Ivp.v ~name:"x" ~rhs:(fun ~tm:_ ~y:_ ~dydt:_ -> ()) ~y0:[||]
                ~t_end:1.0 ()));
  Alcotest.check_raises "ivp times"
    (Invalid_argument "Ivp.v: t_end must exceed t0") (fun () ->
      ignore
        (Ivp.v ~name:"x" ~rhs:(fun ~tm:_ ~y:_ ~dydt:_ -> ()) ~y0:[| 1.0 |]
           ~t0:2.0 ~t_end:1.0 ()))

let test_workspace_reuse () =
  let ivp = Ivp.harmonic ~omega:1.5 in
  let ws = Rk.make_workspace Tableau.rk4 ~dim:2 in
  let y = Array.copy ivp.Ivp.y0 in
  let out1 = Array.make 2 0.0 and out2 = Array.make 2 0.0 in
  Rk.step ws Tableau.rk4 ivp ~tm:0.0 ~h:0.01 ~y ~out:out1;
  (* Re-using the workspace must give bit-identical results. *)
  Rk.step ws Tableau.rk4 ivp ~tm:0.0 ~h:0.01 ~y ~out:out2;
  Alcotest.(check bool) "deterministic" true (out1 = out2)

let test_pirk_validation () =
  Alcotest.check_raises "iterations"
    (Invalid_argument "Tableau.pirk: iterations must be >= 1") (fun () ->
      ignore (Tableau.pirk ~stages:2 ~iterations:0));
  Alcotest.check_raises "stages"
    (Invalid_argument "Tableau.pirk: 1 or 2 base stages supported") (fun () ->
      ignore (Tableau.pirk ~stages:3 ~iterations:2))

let test_advection_2d () =
  let p = Pde.advection_2d ~n:16 ~velocity:(1.0, 0.5) in
  let g = Pde.init_grid p in
  Alcotest.(check (float 1e-12)) "exact at t=0" 0.0
    (Pde.grid_error_vs_exact p ~tm:0.0 g);
  let ivp = Pde.to_ivp p ~t_end:0.05 in
  let y = Rk.integrate Tableau.heun2 ivp ~steps:40 in
  Alcotest.(check bool) "bounded" true
    (Array.for_all (fun v -> abs_float v <= 1.1) y);
  Alcotest.check_raises "velocity sign"
    (Invalid_argument "Pde.advection_2d: velocity components must be > 0")
    (fun () -> ignore (Pde.advection_2d ~n:8 ~velocity:(-1.0, 1.0)))

let more_suite =
  [ Alcotest.test_case "rk validation" `Quick test_rk_validation;
    Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
    Alcotest.test_case "pirk validation" `Quick test_pirk_validation;
    Alcotest.test_case "advection 2d" `Quick test_advection_2d ]

let suite = base_suite @ extra_suite @ more_suite
