open Yasksite_ecm
module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis
module Suite = Yasksite_stencil.Suite

let heat3d = Analysis.of_spec Suite.heat_3d_7pt

let clx = Machine.cascade_lake

let no_fold = [| 1; 1; 1 |]

let test_config () =
  let c = Config.v ~block:[| 0; 16; 64 |] ~fold:[| 1; 2; 4 |] ~wavefront:4 () in
  Alcotest.(check (array int)) "block clamped" [| 128; 16; 64 |]
    (Config.block_extents c ~dims:[| 128; 128; 128 |]);
  Alcotest.(check (array int)) "block oversize" [| 128; 16; 32 |]
    (Config.block_extents c ~dims:[| 128; 128; 32 |]);
  Alcotest.(check (array int)) "fold" [| 1; 2; 4 |]
    (Config.fold_extents c ~rank:3);
  Alcotest.(check (array int)) "linear fold" [| 1; 1; 1 |]
    (Config.fold_extents Config.default ~rank:3);
  Alcotest.check_raises "bad wavefront"
    (Invalid_argument "Config.v: wavefront must be >= 1") (fun () ->
      ignore (Config.v ~wavefront:0 ()))

let test_incore_heat3d () =
  let i = Incore.analyze clx heat3d ~fold:no_fold in
  Alcotest.(check int) "lups/CL" 8 (Incore.lups_per_cl clx);
  Alcotest.(check int) "fma" 2 i.Incore.fma;
  Alcotest.(check int) "adds" 4 i.Incore.adds;
  Alcotest.(check int) "muls" 0 i.Incore.muls;
  (* 7 aligned loads on 2 ports; 1 store on 1 port; one AVX-512 vector
     per cache line. *)
  Alcotest.(check (float 1e-9)) "t_nol" 3.5 i.Incore.t_nol;
  (* max(fma-port (2+0)/2, add-port 4/2) = 2 *)
  Alcotest.(check (float 1e-9)) "t_ol" 2.0 i.Incore.t_ol;
  Alcotest.(check (float 1e-9)) "no shuffles" 0.0 i.Incore.shuffles

let test_incore_fold_penalty () =
  let aligned = Incore.analyze clx heat3d ~fold:no_fold in
  let folded = Incore.analyze clx heat3d ~fold:[| 1; 2; 4 |] in
  Alcotest.(check bool) "folded needs more loads" true
    (folded.Incore.vector_loads > aligned.Incore.vector_loads);
  Alcotest.(check bool) "folded has shuffles" true
    (folded.Incore.shuffles > 0.0)

let test_lc_conditions_clx () =
  let dims = [| 128; 128; 128 |] in
  let bs = Lc.boundaries clx heat3d ~dims ~config:Config.default in
  Alcotest.(check int) "three boundaries" 3 (Array.length bs);
  (* L1 (32 KiB): plane set too big, rows (3*3*128*8 = 9 KiB) fit. *)
  Alcotest.(check bool) "L1 row reuse" true (bs.(0).Lc.condition = Lc.Row_reuse);
  Alcotest.(check (float 1e-9)) "L1 lines" 5.0 bs.(0).Lc.lines_per_cl;
  (* L2 (1 MiB): 3 planes of 128x128 (393 KiB) fit the 512 KiB budget. *)
  Alcotest.(check bool) "L2 outer reuse" true
    (bs.(1).Lc.condition = Lc.Outer_reuse);
  Alcotest.(check (float 1e-9)) "L2 lines" 3.0 bs.(1).Lc.lines_per_cl;
  (* Memory: optimal traffic, 24 B/LUP. *)
  Alcotest.(check (float 1e-9)) "mem B/LUP" 24.0 bs.(2).Lc.bytes_per_lup

let test_lc_all_fits () =
  let dims = [| 24; 24; 24 |] in
  let bs = Lc.boundaries clx heat3d ~dims ~config:Config.default in
  Alcotest.(check bool) "fits in L3" true (bs.(2).Lc.condition = Lc.All_fits);
  Alcotest.(check (float 1e-9)) "no mem traffic" 0.0 bs.(2).Lc.bytes_per_lup

let test_lc_blocking_restores_reuse () =
  let dims = [| 512; 512; 512 |] in
  let unblocked = Lc.boundaries clx heat3d ~dims ~config:Config.default in
  (* 3 planes of 512x512 = 6 MiB: breaks the L2 layer condition. *)
  Alcotest.(check bool) "L2 broken unblocked" true
    (unblocked.(1).Lc.condition <> Lc.Outer_reuse);
  let blocked =
    Lc.boundaries clx heat3d ~dims
      ~config:(Config.v ~block:[| 0; 64; 128 |] ())
  in
  Alcotest.(check bool) "L2 restored by blocking" true
    (blocked.(1).Lc.condition = Lc.Outer_reuse);
  Alcotest.(check bool) "less traffic" true
    (blocked.(1).Lc.lines_per_cl < unblocked.(1).Lc.lines_per_cl)

let test_lc_threads_shrink () =
  let dims = [| 400; 400; 400 |] in
  let at n =
    (Lc.mem_bytes_per_lup clx heat3d ~dims
       ~config:(Config.v ~threads:n ()) [@warning "-3"])
  in
  Alcotest.(check bool) "more threads, no less traffic" true (at 20 >= at 1)

let test_wavefront_traffic () =
  let dims = [| 128; 128; 128 |] in
  let base = Lc.mem_bytes_per_lup clx heat3d ~dims ~config:Config.default in
  let wf4 =
    Lc.mem_bytes_per_lup clx heat3d ~dims ~config:(Config.v ~wavefront:4 ())
  in
  Alcotest.(check (float 1e-9)) "quarter traffic" (base /. 4.0) wf4;
  (* A wavefront too deep for the cache brings no reduction. *)
  let huge = [| 64; 2048; 2048 |] in
  Alcotest.(check bool) "oversized wavefront invalid" false
    (Lc.wavefront_fits clx heat3d ~dims:huge ~config:(Config.v ~wavefront:8 ()));
  let wf_huge =
    Lc.mem_bytes_per_lup clx heat3d ~dims:huge ~config:(Config.v ~wavefront:8 ())
  and base_huge =
    Lc.mem_bytes_per_lup clx heat3d ~dims:huge ~config:Config.default
  in
  Alcotest.(check (float 1e-9)) "no reduction" base_huge wf_huge

let test_model_composition_serial () =
  let dims = [| 128; 128; 128 |] in
  let p = Model.predict clx heat3d ~dims ~config:Config.default in
  let expected =
    max p.Model.incore.Incore.t_ol
      (p.Model.incore.Incore.t_nol +. Array.fold_left ( +. ) 0.0 p.Model.t_data)
  in
  Alcotest.(check (float 1e-9)) "serial composition" expected p.Model.t_ecm;
  Alcotest.(check bool) "positive perf" true (p.Model.lups_single > 0.0)

let test_model_composition_overlap () =
  let rome = Machine.rome in
  let dims = [| 128; 128; 128 |] in
  let p = Model.predict rome heat3d ~dims ~config:Config.default in
  let expected =
    Array.fold_left max
      (max p.Model.incore.Incore.t_ol p.Model.incore.Incore.t_nol)
      p.Model.t_data
  in
  Alcotest.(check (float 1e-9)) "overlapping composition" expected p.Model.t_ecm

let test_model_saturation () =
  let dims = [| 160; 160; 160 |] in
  let p = Model.predict clx heat3d ~dims ~config:Config.default in
  Alcotest.(check bool) "saturates within chip" true
    (p.Model.saturation_cores >= 1 && p.Model.saturation_cores <= clx.Machine.cores);
  let scaling =
    Model.chip_scaling clx heat3d ~dims ~config:Config.default ~max_threads:20
  in
  let _, p1 = scaling.(0) in
  Alcotest.(check (float 1.0)) "n=1 equals single" p.Model.lups_single p1;
  Array.iter
    (fun (n, lups) ->
      Alcotest.(check bool)
        (Printf.sprintf "bounded by saturation at %d" n)
        true
        (lups <= p.Model.lups_saturated +. 1.0))
    scaling

let test_model_in_cache_no_saturation () =
  let dims = [| 24; 24; 24 |] in
  let p = Model.predict clx heat3d ~dims ~config:Config.default in
  Alcotest.(check bool) "no memory ceiling" true
    (p.Model.lups_saturated = infinity);
  Alcotest.(check int) "saturation = all cores" clx.Machine.cores
    p.Model.saturation_cores

let test_wavefront_lane_waste () =
  let dims = [| 128; 128; 128 |] in
  let cfg_bad = Config.v ~fold:[| 8; 1; 1 |] ~wavefront:4 () in
  let cfg_good = Config.v ~fold:[| 1; 1; 8 |] ~wavefront:4 () in
  let pb = Model.predict clx heat3d ~dims ~config:cfg_bad in
  let pg = Model.predict clx heat3d ~dims ~config:cfg_good in
  Alcotest.(check bool) "z-fold wastes lanes under wavefront" true
    (pb.Model.incore.Incore.t_ol > pg.Model.incore.Incore.t_ol)

let test_advisor () =
  let dims = [| 128; 128; 128 |] in
  let space = Advisor.space clx ~dims ~threads:4 ~rank:3 in
  Alcotest.(check bool) "space non-trivial" true (List.length space > 50);
  List.iter
    (fun c ->
      match c.Config.fold with
      | Some f ->
          Alcotest.(check int) "folds match SIMD width" clx.Machine.simd.Machine.dp_lanes
            (Array.fold_left ( * ) 1 f)
      | None -> ())
    space;
  let best_cfg, best_p = Advisor.best clx heat3d ~dims ~threads:4 in
  let default_p =
    Model.predict clx heat3d ~dims ~config:(Config.v ~threads:4 ())
  in
  Alcotest.(check bool) "best at least default" true
    (best_p.Model.lups_chip >= default_p.Model.lups_chip);
  Alcotest.(check int) "thread count preserved" 4 best_cfg.Config.threads;
  let ranked = Advisor.rank_all clx heat3d ~dims ~threads:4 in
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        a.Model.lups_chip >= b.Model.lups_chip && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked descending" true (sorted ranked)

let test_summary_string () =
  let p = Model.predict clx heat3d ~dims:[| 64; 64; 64 |] ~config:Config.default in
  Alcotest.(check bool) "summary mentions ECM" true
    (Astring_contains.contains (Model.summary p) "ECM")

let base_suite =
  [ Alcotest.test_case "config" `Quick test_config;
    Alcotest.test_case "incore heat3d" `Quick test_incore_heat3d;
    Alcotest.test_case "incore fold penalty" `Quick test_incore_fold_penalty;
    Alcotest.test_case "lc conditions clx" `Quick test_lc_conditions_clx;
    Alcotest.test_case "lc all fits" `Quick test_lc_all_fits;
    Alcotest.test_case "lc blocking restores reuse" `Quick
      test_lc_blocking_restores_reuse;
    Alcotest.test_case "lc thread sharing" `Quick test_lc_threads_shrink;
    Alcotest.test_case "wavefront traffic" `Quick test_wavefront_traffic;
    Alcotest.test_case "model serial composition" `Quick
      test_model_composition_serial;
    Alcotest.test_case "model overlap composition" `Quick
      test_model_composition_overlap;
    Alcotest.test_case "model saturation" `Quick test_model_saturation;
    Alcotest.test_case "model in-cache" `Quick test_model_in_cache_no_saturation;
    Alcotest.test_case "wavefront lane waste" `Quick test_wavefront_lane_waste;
    Alcotest.test_case "advisor" `Quick test_advisor;
    Alcotest.test_case "summary" `Quick test_summary_string ]

let test_roofline () =
  let module Roofline = Yasksite_ecm.Roofline in
  let a = heat3d in
  let p = Roofline.predict clx a ~threads:1 in
  (* heat3d: 8 flops / 24 B = 1/3 FLOP/B; single core memory-bound:
     5.6 B/cy * 2.5 GHz / 24 B/LUP = 583 MLUP/s. *)
  Alcotest.(check (float 1e6)) "single-core roofline" 583.3e6 p.Roofline.lups_single;
  let chip = Roofline.predict clx a ~threads:20 in
  (* Chip-level: 105 GB/s / 24 B = 4.375 GLUP/s (memory-bound). *)
  Alcotest.(check (float 1e7)) "chip roofline" 4.375e9 chip.Roofline.lups_chip;
  Alcotest.(check bool) "memory bound" true
    (chip.Roofline.memory_bound < chip.Roofline.flops_bound);
  (* Zero-flop kernels are treated as bandwidth streams. *)
  let copy = Analysis.of_spec Suite.copy_1d in
  let pc = Roofline.predict clx copy ~threads:1 in
  Alcotest.(check bool) "copy finite" true (Float.is_finite pc.Roofline.lups_single);
  Alcotest.check_raises "threads" (Invalid_argument "Roofline.predict: threads must be >= 1")
    (fun () -> ignore (Roofline.predict clx a ~threads:0))

let test_block_fold_alignment () =
  let c = Config.v ~block:[| 0; 5; 9 |] ~fold:[| 1; 2; 4 |] () in
  (* Blocks round up to fold multiples. *)
  Alcotest.(check (array int)) "aligned" [| 128; 6; 12 |]
    (Config.block_extents c ~dims:[| 128; 128; 128 |])




let test_streaming_store_traffic () =
  let dims = [| 128; 128; 128 |] in
  let nt = Config.v ~streaming_stores:true () in
  let bs = Lc.boundaries clx heat3d ~dims ~config:nt in
  (* Memory: 1 read stream + 1 streamed store = 16 B/LUP (vs 24). *)
  Alcotest.(check (float 1e-9)) "mem B/LUP with nt" 16.0
    bs.(2).Lc.bytes_per_lup;
  (* Inner boundaries carry no store lines at all. *)
  Alcotest.(check (float 1e-9)) "L2 lines nt" 1.0 bs.(1).Lc.lines_per_cl;
  let p_nt = Model.predict clx heat3d ~dims ~config:nt in
  let p = Model.predict clx heat3d ~dims ~config:Config.default in
  Alcotest.(check bool) "nt faster when memory bound" true
    (p_nt.Model.lups_single > p.Model.lups_single);
  (* Streaming stores defeat the wavefront's store-side reuse. *)
  let wf_nt = Config.v ~wavefront:4 ~streaming_stores:true () in
  let wf = Config.v ~wavefront:4 () in
  Alcotest.(check bool) "wavefront prefers cached stores" true
    (Lc.mem_bytes_per_lup clx heat3d ~dims ~config:wf
    < Lc.mem_bytes_per_lup clx heat3d ~dims ~config:wf_nt)

let test_advisor_nt_axis () =
  let space = Advisor.space clx ~dims:[| 64; 64; 64 |] ~threads:1 ~rank:3 in
  Alcotest.(check bool) "nt configs present" true
    (List.exists (fun c -> c.Config.streaming_stores) space);
  List.iter
    (fun c ->
      if c.Config.streaming_stores then
        Alcotest.(check int) "nt only without wavefront" 1 c.Config.wavefront)
    space

let extra_suite =
  [ Alcotest.test_case "roofline baseline" `Quick test_roofline;
    Alcotest.test_case "block/fold alignment" `Quick test_block_fold_alignment;
    Alcotest.test_case "streaming stores model" `Quick
      test_streaming_store_traffic;
    Alcotest.test_case "advisor nt axis" `Quick test_advisor_nt_axis ]

let test_lc_2d_conditions () =
  let heat2d = Analysis.of_spec Suite.heat_2d_5pt in
  (* Full CLX, 4096-wide rows: 3 rows x 4096 x 8 B = 96 KiB breaks L1
     (16 KiB budget) but fits L2 (512 KiB budget). *)
  let dims = [| 4096; 4096 |] in
  let bs = Lc.boundaries clx heat2d ~dims ~config:Config.default in
  Alcotest.(check bool) "L1 broken" true (bs.(0).Lc.condition = Lc.No_reuse);
  (* Broken 2D: distinct dy groups {-1,0,1} = 3 lines + 2 store lines. *)
  Alcotest.(check (float 1e-9)) "L1 lines" 5.0 bs.(0).Lc.lines_per_cl;
  Alcotest.(check bool) "L2 holds" true (bs.(1).Lc.condition = Lc.Outer_reuse);
  (* Blocking x restores the L1 condition. *)
  let blocked =
    Lc.boundaries clx heat2d ~dims ~config:(Config.v ~block:[| 0; 256 |] ())
  in
  Alcotest.(check bool) "L1 restored" true
    (blocked.(0).Lc.condition = Lc.Outer_reuse)

let test_lc_varcoef_fields () =
  let vc = Analysis.of_spec Suite.varcoef_3d_7pt in
  let dims = [| 128; 128; 128 |] in
  let bs = Lc.boundaries clx vc ~dims ~config:Config.default in
  (* Memory: two read streams + WA/WB = 4 lines = 32 B/LUP. *)
  Alcotest.(check (float 1e-9)) "mem B/LUP" 32.0 bs.(2).Lc.bytes_per_lup

let test_incore_div_cost () =
  let spec =
    Yasksite_stencil.Spec.v ~name:"div" ~rank:1
      (Yasksite_stencil.Expr.Div
         ( Yasksite_stencil.Expr.Ref { field = 0; offsets = [| 0 |] },
           Yasksite_stencil.Expr.Const 3.0 ))
  in
  let a = Analysis.of_spec spec in
  let i = Incore.analyze clx a ~fold:[| 1 |] in
  Alcotest.(check bool) "division is expensive" true (i.Incore.t_ol >= 8.0)

let test_explain_contents () =
  let p = Model.predict clx heat3d ~dims:[| 128; 128; 128 |] ~config:Config.default in
  let s = Model.explain clx heat3d p in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("mentions " ^ frag) true
        (Astring_contains.contains s frag))
    [ "in-core"; "layer condition"; "composition"; "saturating"; "L3" ]

let test_roofline_vs_ecm_ordering () =
  (* Roofline ignores the cache hierarchy, so for a serial-composition
     machine it must be an upper bound on the ECM prediction. *)
  let module Roofline = Yasksite_ecm.Roofline in
  List.iter
    (fun spec ->
      let a = Analysis.of_spec (Suite.resolve_defaults spec) in
      (* Working sets well beyond L3, where Roofline's streaming
         assumption applies. *)
      let dims =
        match a.Analysis.spec.Yasksite_stencil.Spec.rank with
        | 1 -> [| 1 lsl 23 |]
        | 2 -> [| 2048; 2048 |]
        | _ -> [| 192; 192; 192 |]
      in
      let ecm = Model.predict clx a ~dims ~config:Config.default in
      let rl = Roofline.predict clx a ~threads:1 in
      Alcotest.(check bool)
        (a.Analysis.spec.Yasksite_stencil.Spec.name ^ ": roofline >= ecm")
        true
        (rl.Roofline.lups_single >= ecm.Model.lups_single *. 0.999))
    Suite.eval_suite

let more_suite =
  [ Alcotest.test_case "lc 2d conditions" `Quick test_lc_2d_conditions;
    Alcotest.test_case "lc varcoef fields" `Quick test_lc_varcoef_fields;
    Alcotest.test_case "incore div cost" `Quick test_incore_div_cost;
    Alcotest.test_case "explain contents" `Quick test_explain_contents;
    Alcotest.test_case "roofline upper bound" `Quick
      test_roofline_vs_ecm_ordering ]

let suite = base_suite @ extra_suite @ more_suite
