test/test_offsite.ml: Alcotest Array Executor Float List Offsite Printf Variant Yasksite_arch Yasksite_ecm Yasksite_grid Yasksite_ode Yasksite_offsite Yasksite_stencil
