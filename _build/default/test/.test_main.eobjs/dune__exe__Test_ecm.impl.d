test/test_ecm.ml: Advisor Alcotest Array Astring_contains Config Float Incore Lc List Model Printf Yasksite_arch Yasksite_ecm Yasksite_stencil
