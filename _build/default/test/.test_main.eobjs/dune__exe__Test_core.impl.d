test/test_core.ml: Alcotest Astring_contains Config Machine Machine_file Model Stencil String Yasksite Yasksite_ecm Yasksite_engine
