test/test_main.ml: Alcotest Test_arch Test_cachesim Test_core Test_ecm Test_engine Test_grid Test_ode Test_offsite Test_stencil Test_tuner Test_util
