test/test_stencil.ml: Alcotest Analysis Array Astring_contains Compile Dsl Expr Gen List Parser QCheck QCheck_alcotest Spec Suite Yasksite_grid Yasksite_stencil Yasksite_util
