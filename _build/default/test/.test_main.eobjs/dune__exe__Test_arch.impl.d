test/test_arch.ml: Alcotest Array Astring_contains Cache_level List Machine Machine_file Printf Yasksite_arch Yasksite_util
