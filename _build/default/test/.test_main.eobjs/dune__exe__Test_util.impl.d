test/test_util.ml: Alcotest Array Astring_contains Chart List Prng QCheck QCheck_alcotest Stats String Table Units Yasksite_util
