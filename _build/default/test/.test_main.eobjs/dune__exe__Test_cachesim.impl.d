test/test_cachesim.ml: Alcotest Array Hierarchy Level QCheck QCheck_alcotest Yasksite_arch Yasksite_cachesim Yasksite_util
