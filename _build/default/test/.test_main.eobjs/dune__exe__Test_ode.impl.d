test/test_ode.ml: Alcotest Array Float Ivp List Pde Printf Rk Tableau Yasksite_grid Yasksite_ode Yasksite_stencil
