test/test_grid.ml: Alcotest Array Hashtbl QCheck QCheck_alcotest Yasksite_grid Yasksite_util
