module Machine = Yasksite_arch.Machine
module Suite = Yasksite_stencil.Suite
module Config = Yasksite_ecm.Config
module Tuner = Yasksite_tuner.Tuner

let machine = Machine.test_chip

let spec = Suite.resolve_defaults Suite.heat_2d_5pt

let dims = [| 48; 48 |]

let test_analytic () =
  let r = Tuner.tune_analytic machine spec ~dims ~threads:2 in
  Alcotest.(check int) "single validation run" 1 r.Tuner.kernel_runs;
  Alcotest.(check bool) "several model evals" true
    (r.Tuner.model_evaluations > 4);
  Alcotest.(check bool) "has prediction" true (r.Tuner.predicted_lups <> None);
  Alcotest.(check bool) "measured positive" true (r.Tuner.measured_lups > 0.0);
  Alcotest.(check int) "threads respected" 2 r.Tuner.chosen.Config.threads

let test_empirical () =
  let space =
    [ Config.v ~threads:2 (); Config.v ~threads:2 ~block:[| 0; 16 |] () ]
  in
  let r = Tuner.tune_empirical ~space machine spec ~dims ~threads:2 in
  Alcotest.(check int) "ran whole space" 2 r.Tuner.kernel_runs;
  Alcotest.(check bool) "no model evals" true (r.Tuner.model_evaluations = 0);
  Alcotest.(check bool) "picked from space" true
    (List.exists (fun c -> Config.equal c r.Tuner.chosen) space)

let test_empirical_picks_best () =
  (* The chosen config's measurement must be the max over the space. *)
  let space =
    [ Config.v ~threads:1 ();
      Config.v ~threads:1 ~block:[| 0; 8 |] ();
      Config.v ~threads:1 ~fold:[| 1; 4 |] () ]
  in
  let r = Tuner.tune_empirical ~space machine spec ~dims ~threads:1 in
  List.iter
    (fun config ->
      let m =
        Yasksite_engine.Measure.stencil_sweep machine spec ~dims ~config
      in
      Alcotest.(check bool) "chosen is at least this one" true
        (r.Tuner.measured_lups >= m.Yasksite_engine.Measure.lups_chip -. 1.0))
    space

let test_compare () =
  let space =
    [ Config.v ~threads:2 ();
      Config.v ~threads:2 ~block:[| 0; 16 |] ();
      Config.v ~threads:2 ~block:[| 0; 32 |] () ]
  in
  let c = Tuner.compare_strategies ~space machine spec ~dims ~threads:2 in
  Alcotest.(check (float 1e-9)) "cost ratio" 3.0 c.Tuner.cost_ratio;
  Alcotest.(check bool) "quality sane" true
    (c.Tuner.quality > 0.3 && c.Tuner.quality < 3.0)

let suite =
  [ Alcotest.test_case "analytic tuner" `Quick test_analytic;
    Alcotest.test_case "empirical tuner" `Quick test_empirical;
    Alcotest.test_case "empirical picks best" `Quick test_empirical_picks_best;
    Alcotest.test_case "compare strategies" `Quick test_compare ]
