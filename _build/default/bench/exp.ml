(* Shared infrastructure of the experiment harness. *)
open Yasksite
module Table = Yasksite_util.Table
module Chart = Yasksite_util.Chart
module Stats = Yasksite_util.Stats

(* The simulated testbed: the paper's two machines at 1/8 cache scale
   (grids are scaled alike, so all capacity-relative effects carry
   over; see DESIGN.md). *)
let clx = Machine.scaled ~factor:8 Machine.cascade_lake

let rome = Machine.scaled ~factor:8 Machine.rome

let header id title =
  Printf.printf "\n==================================================\n";
  Printf.printf "%s — %s\n" (String.uppercase_ascii id) title;
  Printf.printf "==================================================\n"

let dims_for (spec : Stencil.Spec.t) =
  (* Memory-bound working sets at simulation scale. *)
  match spec.Stencil.Spec.rank with
  | 1 -> [| 262144 |]
  | 2 -> [| 384; 384 |]
  | _ -> [| 64; 64; 64 |]

let pred_meas machine spec dims config =
  let info = Stencil.Analysis.of_spec spec in
  let p = Model.predict machine info ~dims ~config in
  let m = Engine.Measure.stencil_sweep machine spec ~dims ~config in
  (p, m)

let err ~predicted ~measured = Stats.rel_error ~predicted ~measured

let glups x = x /. 1e9

let mlups x = x /. 1e6
