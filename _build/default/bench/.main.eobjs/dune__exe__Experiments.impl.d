bench/experiments.ml: Array Chart Config Engine Exp Lc List Machine Model Ode Offsite Printf Stats Stencil String Table Tuner Yasksite Yasksite_ecm
