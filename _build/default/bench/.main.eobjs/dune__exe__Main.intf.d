bench/main.mli:
