bench/exp.ml: Engine Machine Model Printf Stencil String Yasksite Yasksite_util
