bench/micro.ml: Advisor Analyze Bechamel Benchmark Config Engine Exp Grid Hashtbl Instance List Machine Measure Model Ode Offsite Printf Staged Stencil Test Time Toolkit Yasksite Yasksite_util
