let bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.0f KiB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then
    Printf.sprintf "%.1f MiB" (f /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.1f GiB" (f /. (1024.0 *. 1024.0 *. 1024.0))

let cy_per_cl x = Printf.sprintf "%.1f cy/CL" x

let glups x = Printf.sprintf "%.2f GLUP/s" (x /. 1e9)

let gflops x = Printf.sprintf "%.2f GF/s" (x /. 1e9)

let gbs x = Printf.sprintf "%.1f GB/s" (x /. 1e9)

let seconds x =
  if x < 1e-6 then Printf.sprintf "%.0f ns" (x *. 1e9)
  else if x < 1e-3 then Printf.sprintf "%.1f us" (x *. 1e6)
  else if x < 1.0 then Printf.sprintf "%.1f ms" (x *. 1e3)
  else Printf.sprintf "%.2f s" x
