type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title ~columns () =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Sep -> acc
            | Cells cs -> max acc (String.length (List.nth cs i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let horiz () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n');
  let aligns = List.map snd t.columns in
  horiz ();
  line (List.map (fun _ -> Left) t.columns) headers;
  horiz ();
  List.iter
    (fun row -> match row with Sep -> horiz () | Cells cs -> line aligns cs)
    rows;
  horiz ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(prec = 2) x = Printf.sprintf "%.*f" prec x

let cell_pct ?(prec = 1) x = Printf.sprintf "%.*f%%" prec (100.0 *. x)
