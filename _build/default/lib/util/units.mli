(** Formatting helpers for the units used across the tool chain:
    cycles per cache line (cy/CL), lattice updates per second (GLUP/s),
    floating-point throughput (GF/s), data volumes and bandwidths. *)

val bytes : int -> string
(** Human-readable byte count, e.g. [49152 -> "48 KiB"]. *)

val cy_per_cl : float -> string
(** e.g. ["12.4 cy/CL"]. *)

val glups : float -> string
(** Lattice updates per second scaled to GLUP/s. Input in LUP/s. *)

val gflops : float -> string
(** Input in FLOP/s, rendered as GF/s. *)

val gbs : float -> string
(** Input in bytes/s, rendered as GB/s (decimal GB). *)

val seconds : float -> string
(** Adaptive time formatting: ns/us/ms/s. *)
