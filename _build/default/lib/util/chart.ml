type series = { label : string; points : (float * float) array }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let bounds series =
  let xs =
    List.concat_map
      (fun s -> Array.to_list (Array.map fst s.points))
      series
  and ys =
    List.concat_map
      (fun s -> Array.to_list (Array.map snd s.points))
      series
  in
  match (xs, ys) with
  | [], _ | _, [] -> invalid_arg "Chart.line: no points"
  | x0 :: xs', y0 :: ys' ->
      let fold lo hi l = List.fold_left (fun (a, b) v -> (min a v, max b v)) (lo, hi) l in
      let xmin, xmax = fold x0 x0 xs' and ymin, ymax = fold y0 y0 ys' in
      let widen lo hi = if hi > lo then (lo, hi) else (lo -. 1.0, hi +. 1.0) in
      let xmin, xmax = widen xmin xmax and ymin, ymax = widen ymin ymax in
      (xmin, xmax, ymin, ymax)

let line ?(width = 64) ?(height = 18) ~title ~x_label ~y_label series =
  let xmin, xmax, ymin, ymax = bounds series in
  let cells = Array.make_matrix height width ' ' in
  let plot_x x =
    let f = (x -. xmin) /. (xmax -. xmin) in
    min (width - 1) (max 0 (int_of_float (f *. float_of_int (width - 1) +. 0.5)))
  in
  let plot_y y =
    let f = (y -. ymin) /. (ymax -. ymin) in
    let row = int_of_float (f *. float_of_int (height - 1) +. 0.5) in
    height - 1 - min (height - 1) (max 0 row)
  in
  List.iteri
    (fun si s ->
      let g = glyphs.(si mod Array.length glyphs) in
      Array.iter (fun (x, y) -> cells.(plot_y y).(plot_x x) <- g) s.points)
    series;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%s (%.4g .. %.4g)\n" y_label ymin ymax);
  Array.iteri
    (fun r row ->
      let edge =
        if r = 0 then Printf.sprintf "%10.4g |" ymax
        else if r = height - 1 then Printf.sprintf "%10.4g |" ymin
        else String.make 10 ' ' ^ " |"
      in
      Buffer.add_string buf edge;
      Buffer.add_string buf (String.init width (fun c -> row.(c)));
      Buffer.add_char buf '\n')
    cells;
  Buffer.add_string buf (String.make 11 ' ' ^ "+" ^ String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%s%-10.4g%s%10.4g   [%s]\n" (String.make 12 ' ') xmin
       (String.make (max 1 (width - 20)) ' ')
       xmax x_label);
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c  %s\n" glyphs.(si mod Array.length glyphs) s.label))
    series;
  Buffer.contents buf

let bars ?(width = 50) ~title entries =
  let vmax =
    List.fold_left
      (fun acc (_, v) ->
        if v < 0.0 then invalid_arg "Chart.bars: negative value";
        max acc v)
      0.0 entries
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  List.iter
    (fun (l, v) ->
      let n =
        if vmax = 0.0 then 0
        else int_of_float (v /. vmax *. float_of_int width +. 0.5)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s %.4g\n" label_w l (String.make n '#') v))
    entries;
  Buffer.contents buf
