(** ASCII table rendering for experiment output.

    The benchmark harness prints every reconstructed paper table and the
    tabular backing data of every figure through this module, so all
    experiment output is uniform and diff-friendly. *)

type align = Left | Right

type t

val create : ?title:string -> columns:(string * align) list -> unit -> t
(** [create ~columns ()] starts an empty table with the given header. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render with box-drawing in plain ASCII. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)

val cell_f : ?prec:int -> float -> string
(** Format a float cell with [prec] decimals (default 2). *)

val cell_pct : ?prec:int -> float -> string
(** Format a ratio as a percentage cell, e.g. [0.073 -> "7.3%"]. *)
