lib/util/stats.mli:
