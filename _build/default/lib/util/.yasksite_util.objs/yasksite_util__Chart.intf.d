lib/util/chart.mli:
