lib/util/prng.mli:
