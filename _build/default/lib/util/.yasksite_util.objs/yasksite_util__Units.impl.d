lib/util/units.ml: Printf
