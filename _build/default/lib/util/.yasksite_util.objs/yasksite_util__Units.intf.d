lib/util/units.mli:
