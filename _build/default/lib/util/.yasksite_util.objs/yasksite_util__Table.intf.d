lib/util/table.mli:
