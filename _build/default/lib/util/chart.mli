(** ASCII charts for figure-shaped experiment output.

    The paper's figures are line/bar plots (performance vs. cores, block
    size sweeps, variant comparisons). We render the same series as ASCII
    charts so the "shape" claims (who wins, where curves saturate or cross)
    are visible directly in benchmark output. *)

type series = { label : string; points : (float * float) array }

val line :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Multi-series scatter/line chart. Each series is drawn with its own
    glyph; a legend maps glyphs to labels. Axes are linear and
    auto-scaled over all series. *)

val bars :
  ?width:int -> title:string -> (string * float) list -> string
(** Horizontal bar chart: one labelled bar per entry, scaled to the
    maximum value. Values must be non-negative. *)
