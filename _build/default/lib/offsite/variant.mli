(** Implementation variants of one explicit Runge–Kutta step over a
    stencil-RHS PDE — the objects Offsite enumerates and asks YaskSite to
    rank.

    A variant is a straight-line sequence of stencil kernels per time
    step over named logical buffers. Two fusion schemes are built:

    - {e unfused}: every stage input Y_i = y + h sum a_ij K_j is
      materialised by a point-wise "axpy" kernel, then the RHS stencil is
      applied to it — many cheap sweeps, minimal streams per sweep;
    - {e fused}: the stage's linear combination is substituted into the
      RHS stencil ({!Yasksite_stencil.Expr.subst_accesses}), so each
      stage is a single sweep reading y and the previous K_j at stencil
      offsets — fewer sweeps, more streams each.

    Which one wins depends on the machine and grid size; that is exactly
    the question the ECM model answers without running either. *)

type buffer =
  | State  (** y at the current step *)
  | Stage of int  (** K_i *)
  | Stage_input  (** scratch Y_i (unfused scheme only) *)
  | Next_state  (** y at the next step *)

type kernel = {
  label : string;
  spec : Yasksite_stencil.Spec.t;  (** resolved; field k reads [inputs.(k)] *)
  inputs : buffer array;
  output : buffer;
}

type t = {
  name : string;
  scheme : [ `Unfused | `Fused | `Mixed of bool array ];
  tableau : Yasksite_ode.Tableau.t;
  kernels : kernel list;  (** executed in order, once per step *)
}

val buffers : t -> buffer list
(** Distinct buffers the variant touches. *)

val sweeps_per_step : t -> int

val with_mask :
  Yasksite_ode.Tableau.t ->
  Yasksite_ode.Pde.t ->
  h:float ->
  mask:bool array ->
  t
(** Per-stage fusion choice: stage i is fused into a single sweep when
    [mask.(i)], otherwise materialised by an axpy + RHS pair. [mask]
    must have one entry per stage. The all-false mask is {!unfused}, the
    all-true mask {!fused}; anything between is a mixed variant (the
    fuller space real Offsite enumerates). *)

val unfused : Yasksite_ode.Tableau.t -> Yasksite_ode.Pde.t -> h:float -> t

val fused : Yasksite_ode.Tableau.t -> Yasksite_ode.Pde.t -> h:float -> t

val all : Yasksite_ode.Tableau.t -> Yasksite_ode.Pde.t -> h:float -> t list
(** Both pure schemes. *)

val all_mixed :
  ?max_stages:int ->
  Yasksite_ode.Tableau.t ->
  Yasksite_ode.Pde.t ->
  h:float ->
  t list
(** Every fusion mask (2^s variants, de-duplicated: stages with an empty
    coefficient row have no axpy to fuse). Only for methods with at most
    [max_stages] (default 4) stages; larger methods fall back to
    {!all}. *)
