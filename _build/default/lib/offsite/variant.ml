module Spec = Yasksite_stencil.Spec
module Expr = Yasksite_stencil.Expr
module Tableau = Yasksite_ode.Tableau
module Pde = Yasksite_ode.Pde

type buffer = State | Stage of int | Stage_input | Next_state

type kernel = {
  label : string;
  spec : Spec.t;
  inputs : buffer array;
  output : buffer;
}

type t = {
  name : string;
  scheme : [ `Unfused | `Fused | `Mixed of bool array ];
  tableau : Tableau.t;
  kernels : kernel list;
}

let buffers t =
  List.sort_uniq compare
    (List.concat_map
       (fun k -> k.output :: Array.to_list k.inputs)
       t.kernels)

let sweeps_per_step t = List.length t.kernels

let center rank = Array.make rank 0

(* Point-wise linear combination: out = f0 + sum_k coeff_k * f_k. *)
let lincomb_expr ~rank coeffs =
  let base = Expr.Ref { Expr.field = 0; offsets = center rank } in
  List.fold_left
    (fun acc (field, coeff) ->
      Expr.Add
        (acc, Expr.Mul (Expr.Const coeff, Expr.Ref { Expr.field; offsets = center rank })))
    base coeffs

(* Non-zero row entries of the tableau matrix, as (stage, coeff*h). *)
let scaled_row row ~h =
  Array.to_list row
  |> List.mapi (fun j a -> (j, a *. h))
  |> List.filter (fun (_, x) -> x <> 0.0)

let update_kernel (tab : Tableau.t) (pde : Pde.t) ~h ~prefix =
  let rank = pde.Pde.rank in
  let weights = scaled_row tab.Tableau.b ~h in
  let coeffs = List.mapi (fun k (_, w) -> (k + 1, w)) weights in
  let expr = lincomb_expr ~rank coeffs in
  let inputs =
    Array.of_list (State :: List.map (fun (j, _) -> Stage j) weights)
  in
  { label = prefix ^ "-update";
    spec =
      Spec.v ~name:(prefix ^ "-update") ~rank ~n_fields:(Array.length inputs)
        expr;
    inputs;
    output = Next_state }

(* Kernels of stage [i] under a fusion decision. *)
let stage_kernels (tab : Tableau.t) (pde : Pde.t) ~h ~prefix ~fuse i =
  let rank = pde.Pde.rank in
  let row = scaled_row tab.Tableau.a.(i) ~h in
  if row = [] then
    (* K_i = F(y) directly; nothing to fuse. *)
    [ { label = Printf.sprintf "%s-rhs%d" prefix i;
        spec = Spec.with_name pde.Pde.spec (Printf.sprintf "%s-rhs%d" prefix i);
        inputs = [| State |];
        output = Stage i } ]
  else begin
    let coeffs = List.mapi (fun k (_, w) -> (k + 1, w)) row in
    if fuse then begin
      (* Substitute y + h sum a_ij K_j for every state access of the
         RHS stencil: one sweep, more streams. *)
      let expr =
        Expr.subst_accesses
          (fun (acc : Expr.access) ->
            let base = Expr.Ref { acc with Expr.field = 0 } in
            List.fold_left
              (fun e (field, coeff) ->
                Expr.Add
                  ( e,
                    Expr.Mul
                      (Expr.Const coeff, Expr.Ref { acc with Expr.field = field })
                  ))
              base coeffs)
          pde.Pde.spec.Spec.expr
      in
      [ { label = Printf.sprintf "%s-stage%d" prefix i;
          spec =
            Spec.v
              ~name:(Printf.sprintf "%s-stage%d" prefix i)
              ~rank
              ~n_fields:(1 + List.length row)
              expr;
          inputs = Array.of_list (State :: List.map (fun (j, _) -> Stage j) row);
          output = Stage i } ]
    end
    else begin
      (* Materialise the stage input, then apply the RHS stencil. *)
      let axpy =
        { label = Printf.sprintf "%s-axpy%d" prefix i;
          spec =
            Spec.v
              ~name:(Printf.sprintf "%s-axpy%d" prefix i)
              ~rank
              ~n_fields:(1 + List.length row)
              (lincomb_expr ~rank coeffs);
          inputs = Array.of_list (State :: List.map (fun (j, _) -> Stage j) row);
          output = Stage_input }
      in
      let rhs =
        { label = Printf.sprintf "%s-rhs%d" prefix i;
          spec = Spec.with_name pde.Pde.spec (Printf.sprintf "%s-rhs%d" prefix i);
          inputs = [| Stage_input |];
          output = Stage i }
      in
      [ axpy; rhs ]
    end
  end

let build (tab : Tableau.t) (pde : Pde.t) ~h ~mask ~scheme ~suffix =
  let prefix = Printf.sprintf "%s-%s-%s" tab.Tableau.name pde.Pde.name suffix in
  let kernels =
    List.concat
      (List.init tab.Tableau.s (fun i ->
           stage_kernels tab pde ~h ~prefix ~fuse:mask.(i) i))
  in
  { name = prefix;
    scheme;
    tableau = tab;
    kernels = kernels @ [ update_kernel tab pde ~h ~prefix ] }

let with_mask (tab : Tableau.t) (pde : Pde.t) ~h ~mask =
  if Array.length mask <> tab.Tableau.s then
    invalid_arg "Variant.with_mask: mask length must equal the stage count";
  let suffix =
    "mask-"
    ^ String.concat ""
        (Array.to_list (Array.map (fun b -> if b then "f" else "u") mask))
  in
  build tab pde ~h ~mask ~scheme:(`Mixed (Array.copy mask)) ~suffix

let unfused (tab : Tableau.t) (pde : Pde.t) ~h =
  build tab pde ~h
    ~mask:(Array.make tab.Tableau.s false)
    ~scheme:`Unfused ~suffix:"unfused"

let fused (tab : Tableau.t) (pde : Pde.t) ~h =
  build tab pde ~h
    ~mask:(Array.make tab.Tableau.s true)
    ~scheme:`Fused ~suffix:"fused"

let all tab pde ~h = [ unfused tab pde ~h; fused tab pde ~h ]

let all_mixed ?(max_stages = 4) (tab : Tableau.t) pde ~h =
  let s = tab.Tableau.s in
  if s > max_stages then all tab pde ~h
  else begin
    (* Stages with empty coefficient rows have no fusion decision; fix
       their mask bit to avoid duplicate variants. *)
    let free =
      Array.init s (fun i -> scaled_row tab.Tableau.a.(i) ~h <> [])
    in
    let free_indices =
      List.filter (fun i -> free.(i)) (List.init s (fun i -> i))
    in
    let n_free = List.length free_indices in
    List.init (1 lsl n_free) (fun bits ->
        let mask = Array.make s false in
        List.iteri
          (fun pos i -> mask.(i) <- bits land (1 lsl pos) <> 0)
          free_indices;
        with_mask tab pde ~h ~mask)
  end
