(** Grid-native execution of an implementation variant — the semantic
    reference: advancing the PDE with a variant's kernel sequence must
    produce exactly what the flat-vector RK integrator produces (the
    integration tests check this to machine precision).

    Buffers are materialised as grids with the stencil's halo; halos are
    refreshed according to the problem's boundary condition before every
    kernel that reads a buffer at non-zero offsets (for Dirichlet
    problems the stage derivative is pinned to 0 on the boundary, since
    the boundary values are constant in time). *)

type t

val create : Yasksite_ode.Pde.t -> Variant.t -> t
(** Allocate buffers and compile the kernel sequence. The PDE's initial
    condition is loaded into the state buffer. *)

val step : t -> unit
(** Advance one time step (the variant's [h]). *)

val run : t -> steps:int -> unit

val state : t -> Yasksite_grid.Grid.t
(** The current state grid (valid between steps). *)

val steps_done : t -> int
