lib/offsite/offsite.ml: Array List Variant Yasksite_arch Yasksite_ecm Yasksite_engine Yasksite_ode Yasksite_stencil Yasksite_util
