lib/offsite/variant.ml: Array List Printf String Yasksite_ode Yasksite_stencil
