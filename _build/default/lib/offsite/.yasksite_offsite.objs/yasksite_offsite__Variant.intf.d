lib/offsite/variant.mli: Yasksite_ode Yasksite_stencil
