lib/offsite/executor.mli: Variant Yasksite_grid Yasksite_ode
