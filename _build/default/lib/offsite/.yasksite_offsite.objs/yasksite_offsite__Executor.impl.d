lib/offsite/executor.ml: Array List Variant Yasksite_engine Yasksite_grid Yasksite_ode Yasksite_stencil
