lib/offsite/offsite.mli: Variant Yasksite_arch Yasksite_ecm Yasksite_ode Yasksite_stencil
