(** Combinators for writing stencil expressions concisely.

    [open Yasksite_stencil.Dsl] locally to write kernels like
    {[
      let heat_3d =
        p "r" *: sum [ fld [-1;0;0]; fld [1;0;0]; fld [0;-1;0];
                       fld [0;1;0]; fld [0;0;-1]; fld [0;0;1] ]
        +: (p "c" *: fld [0;0;0])
    ]} *)

val fld : ?field:int -> int list -> Expr.t
(** Field access at a relative offset (slowest dimension first); [field]
    defaults to 0. *)

val c : float -> Expr.t
(** Literal constant. *)

val p : string -> Expr.t
(** Named coefficient, resolved at kernel-compile time. *)

val ( +: ) : Expr.t -> Expr.t -> Expr.t

val ( -: ) : Expr.t -> Expr.t -> Expr.t

val ( *: ) : Expr.t -> Expr.t -> Expr.t

val ( /: ) : Expr.t -> Expr.t -> Expr.t

val neg : Expr.t -> Expr.t

val sum : Expr.t list -> Expr.t
(** Left-associated sum; the list must be non-empty. *)
