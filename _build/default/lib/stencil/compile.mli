(** Staged compilation of stencil expressions to OCaml closures.

    This is the repo's stand-in for YASK's code generator: a [Spec.t] is
    lowered once into a closure tree specialised to the input grids'
    layouts, then applied at every lattice point. Coefficients must be
    fully resolved before compilation. *)

exception Unresolved_coefficient of string

val compile1 : Spec.t -> inputs:Yasksite_grid.Grid.t array -> int -> float
(** [compile1 spec ~inputs] returns the point evaluator for a rank-1
    kernel: partially applying the first two arguments yields
    [fun x -> value]. Raises [Invalid_argument] if the number, rank or
    halo of [inputs] does not cover the stencil, and
    {!Unresolved_coefficient} if a named coefficient remains. *)

val compile2 :
  Spec.t -> inputs:Yasksite_grid.Grid.t array -> int -> int -> float
(** Rank-2 analogue: evaluator [fun y x -> value]. *)

val compile3 :
  Spec.t -> inputs:Yasksite_grid.Grid.t array -> int -> int -> int -> float
(** Rank-3 analogue: evaluator [fun z y x -> value]. *)

val check_inputs : Spec.t -> inputs:Yasksite_grid.Grid.t array -> unit
(** Validation shared by the [compileN] functions: input count equals
    [n_fields], every grid has the spec's rank, and each grid's halo is at
    least the stencil radius of the accesses to that field. *)
