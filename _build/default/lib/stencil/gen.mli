(** Random stencil generation for property-based testing.

    The engine's loop transformations (blocking, folding, wavefronts) are
    verified to bit-reproduce the naive schedule on randomly drawn
    stencils, not just the hand-written suite. *)

val spec :
  Yasksite_util.Prng.t -> rank:int -> ?max_radius:int -> unit -> Spec.t
(** [spec rng ~rank ()] draws a random constant-coefficient stencil: a
    star or box access pattern of radius 1..[max_radius] (default 2) with
    random subsets of the candidate offsets (always including the
    center) and random coefficients in [\[-1, 1\]]. The result is fully
    resolved (no symbolic coefficients). *)
