(** Static analysis of a stencil kernel: everything the ECM model and the
    layer-condition machinery need to know without running the code. *)

type shape =
  | Point  (** all accesses at the center *)
  | Star  (** offsets on the axes only (e.g. 3d7pt) *)
  | Box  (** general offsets within the radius box (e.g. 3d27pt) *)

type t = {
  spec : Spec.t;
  accesses : Expr.access list;
      (** distinct accesses in lexicographic order — the post-CSE load
          set: each distinct (field, offset) is loaded once per LUP *)
  radius : int array;  (** per-dimension max |offset| over all accesses *)
  shape : shape;
  adds : int;  (** additive operations (Add/Sub) per LUP *)
  muls : int;
  divs : int;
  flops : int;  (** adds + muls + divs *)
  loads : int;  (** [List.length accesses] *)
  stores : int;  (** always 1: the output write *)
  read_fields : int list;  (** distinct fields read, ascending *)
}

val of_spec : Spec.t -> t

val halo : t -> int array
(** Ghost-zone width required per dimension (equals [radius]). *)

val accesses_of_field : t -> int -> int array list
(** Distinct offsets at which a given field is read. *)

val min_code_balance : t -> float
(** Bytes per lattice update assuming perfect in-cache reuse: one load
    stream per distinct read field plus write-allocate + write-back for
    the output — the paper's "optimal code balance" B_c in bytes/LUP. *)

val arithmetic_intensity : t -> float
(** flops / {!min_code_balance} — FLOP per byte at optimal traffic. *)

val describe : t -> string list
(** One table row: name, rank, shape, radius, flops, loads, balance. *)
