module Prng = Yasksite_util.Prng

let star_offsets rank radius =
  let center = Array.make rank 0 in
  let axis d r =
    let o = Array.copy center in
    o.(d) <- r;
    o
  in
  let offs = ref [ center ] in
  for d = 0 to rank - 1 do
    for r = 1 to radius do
      offs := axis d r :: axis d (-r) :: !offs
    done
  done;
  !offs

let box_offsets rank radius =
  let rec go d acc =
    if d = rank then [ Array.of_list (List.rev acc) ]
    else begin
      let out = ref [] in
      for r = -radius to radius do
        out := go (d + 1) (r :: acc) @ !out
      done;
      !out
    end
  in
  go 0 []

let spec rng ~rank ?(max_radius = 2) () =
  if rank < 1 || rank > 3 then invalid_arg "Gen.spec: rank must be 1..3";
  let radius = 1 + Prng.int rng ~bound:max_radius in
  let candidates =
    if Prng.bool rng then star_offsets rank radius
    else box_offsets rank (min radius 1 + if rank < 3 then radius - 1 else 0)
  in
  let center = Array.make rank 0 in
  let chosen =
    List.filter
      (fun o -> o = center || Prng.float rng < 0.6)
      candidates
  in
  let chosen = if List.mem center chosen then chosen else center :: chosen in
  let terms =
    List.map
      (fun offsets ->
        let coeff = Prng.float_range rng ~lo:(-1.0) ~hi:1.0 in
        Expr.Mul (Expr.Const coeff, Expr.Ref { field = 0; offsets }))
      chosen
  in
  let expr =
    match terms with
    | [] -> assert false
    | t :: rest -> List.fold_left (fun a b -> Expr.Add (a, b)) t rest
  in
  let name = Printf.sprintf "random-%dd-r%d-%dpt" rank radius (List.length chosen) in
  Spec.v ~name ~rank expr
