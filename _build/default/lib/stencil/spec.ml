type t = { name : string; rank : int; n_fields : int; expr : Expr.t }

let validate t =
  if t.rank < 1 || t.rank > 3 then invalid_arg "Spec: rank must be 1..3";
  if t.n_fields < 1 then invalid_arg "Spec: need at least one field";
  let n_accesses =
    Expr.fold_accesses t.expr ~init:0 ~f:(fun n (a : Expr.access) ->
        if Array.length a.offsets <> t.rank then
          invalid_arg "Spec: access rank mismatch";
        if a.field < 0 || a.field >= t.n_fields then
          invalid_arg "Spec: field index out of range";
        n + 1)
  in
  if n_accesses = 0 then invalid_arg "Spec: expression reads no field";
  t

let v ~name ~rank ?(n_fields = 1) expr =
  validate { name; rank; n_fields; expr }

let with_name t name = { t with name }

let with_expr t expr = validate { t with expr }

let resolve t bindings =
  let env n = List.assoc_opt n bindings in
  { t with expr = Expr.subst_coeffs env t.expr }

let loop_vars rank =
  (* x fastest; names chosen to match Expr.to_c's axis naming. *)
  match rank with
  | 1 -> [ "x" ]
  | 2 -> [ "y"; "x" ]
  | _ -> [ "z"; "y"; "x" ]

let to_c t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "// stencil %s\n" t.name);
  let vars = loop_vars t.rank in
  List.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = 0; %s < n%d; %s++)\n"
           (String.make (2 * i) ' ')
           v v i v))
    vars;
  let indent = String.make (2 * t.rank) ' ' in
  Buffer.add_string buf
    (Printf.sprintf "%sout(%s) = %s;\n" indent (String.concat "," vars)
       (Expr.to_c t.expr));
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_c t)
