lib/stencil/dsl.ml: Array Expr List
