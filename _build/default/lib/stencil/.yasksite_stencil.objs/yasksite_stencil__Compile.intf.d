lib/stencil/compile.mli: Spec Yasksite_grid
