lib/stencil/dsl.mli: Expr
