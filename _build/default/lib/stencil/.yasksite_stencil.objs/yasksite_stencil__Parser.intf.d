lib/stencil/parser.mli: Expr Spec
