lib/stencil/analysis.ml: Array Expr List Printf Spec String
