lib/stencil/gen.ml: Array Expr List Printf Spec Yasksite_util
