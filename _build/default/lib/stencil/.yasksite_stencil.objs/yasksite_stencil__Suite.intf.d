lib/stencil/suite.mli: Spec
