lib/stencil/gen.mli: Spec Yasksite_util
