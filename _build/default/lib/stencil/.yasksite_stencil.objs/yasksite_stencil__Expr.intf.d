lib/stencil/expr.mli: Format
