lib/stencil/parser.ml: Array Expr List Printf Spec String
