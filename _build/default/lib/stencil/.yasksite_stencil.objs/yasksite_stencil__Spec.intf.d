lib/stencil/spec.mli: Expr Format
