lib/stencil/spec.ml: Array Buffer Expr Format List Printf String
