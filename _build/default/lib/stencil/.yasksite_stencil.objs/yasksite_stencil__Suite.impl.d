lib/stencil/suite.ml: Dsl Expr List Spec
