lib/stencil/compile.ml: Analysis Array Expr List Printf Spec Yasksite_grid
