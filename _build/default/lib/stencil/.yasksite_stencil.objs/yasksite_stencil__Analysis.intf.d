lib/stencil/analysis.mli: Expr Spec
