lib/stencil/expr.ml: Array Format List Printf String
