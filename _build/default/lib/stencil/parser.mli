(** Parser for the textual stencil language — the inverse of
    {!Expr.to_c}, so kernels can be given to the CLI as strings.

    Grammar (precedence climbing, left-associative):

    {v
      expr   ::= term (('+' | '-') term)*
      term   ::= unary (('*' | '/') unary)*
      unary  ::= '-' unary | atom
      atom   ::= number | name | access | '(' expr ')'
      access ::= 'f' digits '(' coord (',' coord)* ')'
      coord  ::= axis (('+' | '-') digits)? | '-'? digits
    v}

    Axis names map to dimensions by rank: rank 3 uses [z,y,x], rank 2
    [y,x], rank 1 [x] (the convention {!Expr.to_c} prints). A bare name
    that is not an access is a symbolic coefficient. *)

val parse_expr : rank:int -> string -> (Expr.t, string) result
(** Parse an expression; errors carry a position and a description. *)

val parse_spec :
  name:string -> rank:int -> ?n_fields:int -> string -> (Spec.t, string) result
(** Parse and validate a whole kernel ([Spec.v] errors are reported as
    [Error]). *)
