(* Hand-written lexer and recursive-descent parser for the stencil
   expression language. Kept dependency-free (no menhir) since the
   grammar is small and errors should carry friendly positions. *)

type token =
  | Num of float
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Plus
  | Minus
  | Star
  | Slash

exception Parse_error of int * string (* position, message *)

let fail pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (pos, m))) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let push tok pos = tokens := (tok, pos) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || c = '.' then begin
      let j = ref !i in
      (* digits, optional fraction, optional exponent *)
      while !j < n && (is_digit src.[!j] || src.[!j] = '.') do
        incr j
      done;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        incr j;
        if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      let text = String.sub src !i (!j - !i) in
      (match float_of_string_opt text with
      | Some v -> push (Num v) pos
      | None -> fail pos "malformed number %S" text);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do
        incr j
      done;
      push (Ident (String.sub src !i (!j - !i))) pos;
      i := !j
    end
    else begin
      (match c with
      | '(' -> push Lparen pos
      | ')' -> push Rparen pos
      | ',' -> push Comma pos
      | '+' -> push Plus pos
      | '-' -> push Minus pos
      | '*' -> push Star pos
      | '/' -> push Slash pos
      | _ -> fail pos "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser *)

type state = { mutable toks : (token * int) list; len : int }

let peek st = match st.toks with [] -> None | (t, p) :: _ -> Some (t, p)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  match peek st with
  | Some (t, _) when t = tok -> advance st
  | Some (_, p) -> fail p "expected %s" what
  | None -> fail st.len "expected %s at end of input" what

let axes_for rank =
  match rank with
  | 1 -> [ ("x", 0) ]
  | 2 -> [ ("y", 0); ("x", 1) ]
  | _ -> [ ("z", 0); ("y", 1); ("x", 2) ]

(* A coordinate: axis, axis+k, axis-k, or a bare (possibly negative)
   integer that must belong to the axis at this position. *)
let parse_coord st ~axes ~dim_index =
  match peek st with
  | Some (Ident name, p) -> (
      advance st;
      let dim =
        match List.assoc_opt name axes with
        | Some d -> d
        | None -> fail p "unknown axis %S" name
      in
      if dim <> dim_index then
        fail p "axis %S in position %d (expected position %d)" name dim_index
          dim;
      match peek st with
      | Some (Plus, _) -> (
          advance st;
          match peek st with
          | Some (Num v, _) ->
              advance st;
              int_of_float v
          | Some (_, q) -> fail q "expected offset after '+'"
          | None -> fail st.len "expected offset after '+'")
      | Some (Minus, _) -> (
          advance st;
          match peek st with
          | Some (Num v, _) ->
              advance st;
              -int_of_float v
          | Some (_, q) -> fail q "expected offset after '-'"
          | None -> fail st.len "expected offset after '-'")
      | _ -> 0)
  | Some (Num v, _) ->
      advance st;
      int_of_float v
  | Some (Minus, _) -> (
      advance st;
      match peek st with
      | Some (Num v, _) ->
          advance st;
          -int_of_float v
      | Some (_, p) -> fail p "expected number after '-'"
      | None -> fail st.len "expected number after '-'")
  | Some (_, p) -> fail p "expected coordinate"
  | None -> fail st.len "expected coordinate"

let field_of_ident name =
  if String.length name >= 2 && name.[0] = 'f' then
    int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None

let rec parse_sum st ~rank =
  let lhs = ref (parse_term st ~rank) in
  let rec loop () =
    match peek st with
    | Some (Plus, _) ->
        advance st;
        lhs := Expr.Add (!lhs, parse_term st ~rank);
        loop ()
    | Some (Minus, _) ->
        advance st;
        lhs := Expr.Sub (!lhs, parse_term st ~rank);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_term st ~rank =
  let lhs = ref (parse_unary st ~rank) in
  let rec loop () =
    match peek st with
    | Some (Star, _) ->
        advance st;
        lhs := Expr.Mul (!lhs, parse_unary st ~rank);
        loop ()
    | Some (Slash, _) ->
        advance st;
        lhs := Expr.Div (!lhs, parse_unary st ~rank);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st ~rank =
  match peek st with
  | Some (Minus, _) ->
      advance st;
      Expr.Neg (parse_unary st ~rank)
  | _ -> parse_atom st ~rank

and parse_atom st ~rank =
  match peek st with
  | Some (Num v, _) ->
      advance st;
      Expr.Const v
  | Some (Lparen, _) ->
      advance st;
      let e = parse_sum st ~rank in
      expect st Rparen "')'";
      e
  | Some (Ident name, p) -> (
      advance st;
      match (field_of_ident name, peek st) with
      | Some field, Some (Lparen, _) ->
          advance st;
          let axes = axes_for rank in
          let offsets = Array.make rank 0 in
          for dim = 0 to rank - 1 do
            if dim > 0 then expect st Comma "','";
            offsets.(dim) <- parse_coord st ~axes ~dim_index:dim
          done;
          expect st Rparen "')'";
          Expr.Ref { Expr.field; offsets }
      | _, Some (Lparen, _) -> fail p "unknown function %S" name
      | _, _ -> Expr.Coeff name)
  | Some (_, p) -> fail p "expected expression"
  | None -> fail st.len "expected expression"

let parse_expr ~rank src =
  if rank < 1 || rank > 3 then Error "rank must be 1..3"
  else begin
    try
      let st = { toks = lex src; len = String.length src } in
      let e = parse_sum st ~rank in
      match peek st with
      | Some (_, p) -> Error (Printf.sprintf "at %d: trailing input" p)
      | None -> Ok e
    with Parse_error (pos, msg) -> Error (Printf.sprintf "at %d: %s" pos msg)
  end

let parse_spec ~name ~rank ?n_fields src =
  match parse_expr ~rank src with
  | Error _ as e -> e
  | Ok expr -> (
      let n_fields =
        match n_fields with
        | Some n -> n
        | None ->
            (* Infer from the highest referenced field. *)
            1
            + Expr.fold_accesses expr ~init:0 ~f:(fun m (a : Expr.access) ->
                  max m a.Expr.field)
      in
      try Ok (Spec.v ~name ~rank ~n_fields expr)
      with Invalid_argument m -> Error m)
