(** A stencil kernel specification: the unit YaskSite tunes.

    One sweep of the kernel reads [n_fields] input grids and writes one
    output grid; at every interior point of the output, {!expr} is
    evaluated with accesses interpreted relative to that point. *)

type t = private {
  name : string;
  rank : int;  (** 1..3 *)
  n_fields : int;  (** number of input fields (>= 1) *)
  expr : Expr.t;
}

val v : name:string -> rank:int -> ?n_fields:int -> Expr.t -> t
(** Validating constructor. Checks: rank 1..3; every access has matching
    rank and a field index within [n_fields] (default 1); the expression
    contains at least one access. Raises [Invalid_argument] otherwise. *)

val with_name : t -> string -> t

val with_expr : t -> Expr.t -> t
(** Replace the expression, re-validating. *)

val resolve : t -> (string * float) list -> t
(** Substitute named coefficients; remaining names stay symbolic. *)

val to_c : t -> string
(** Render the kernel as the C loop nest YASK's scalar fallback would
    emit — for display and documentation. *)

val pp : Format.formatter -> t -> unit
