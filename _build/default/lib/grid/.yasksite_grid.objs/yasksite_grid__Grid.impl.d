lib/grid/grid.ml: Array Bigarray Printf
