lib/grid/grid.mli:
