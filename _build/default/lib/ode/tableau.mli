(** Butcher tableaux of explicit Runge–Kutta methods, including the
    explicit schemes Offsite tunes (classic RK families, embedded pairs
    for adaptive stepping, and PIRK — fixed-point iterated implicit RK,
    which yields an explicit method with many structurally similar
    stages, the workload class the paper's ODE experiments target). *)

type t = {
  name : string;
  s : int;  (** number of stages *)
  a : float array array;
      (** s x s stage coefficient matrix; strictly lower-triangular for
          classic explicit methods (PIRK methods expand a full matrix
          into explicit sweeps) *)
  b : float array;  (** output weights, length s *)
  c : float array;  (** stage abscissae, length s *)
  order : int;
  b_err : float array option;
      (** embedded lower-order weights for adaptive step-size control *)
}

val v :
  name:string ->
  a:float array array ->
  b:float array ->
  c:float array ->
  order:int ->
  ?b_err:float array ->
  unit ->
  t
(** Validating constructor: square [a], matching lengths, explicitness
    (no [a.(i).(j)] with [j >= i] non-zero). *)

val euler : t

val heun2 : t

val ralston2 : t

val kutta3 : t

val rk4 : t
(** The classic 4th-order method — the paper's main ODE workload. *)

val kutta38 : t

val rkf45 : t
(** Fehlberg 4(5) embedded pair. *)

val cash_karp : t

val dopri5 : t
(** Dormand–Prince 5(4), 7 stages (FSAL not exploited). *)

val all : t list
(** All classic explicit methods above (not the PIRK constructions). *)

val find : string -> t
(** Lookup in {!all} by name; raises [Not_found]. *)

val pirk : stages:int -> iterations:int -> t
(** Parallel iterated Runge–Kutta: fixed-point iteration of the
    [stages]-stage Gauss–Legendre corrector, unrolled into an explicit
    tableau of [stages * iterations] stages with output order
    [min (2*stages) (iterations)]. Supports 1 or 2 base stages. *)

val weight_check : t -> float
(** |sum b - 1|: the zeroth-order consistency residual. *)

val order_residual : t -> int -> float
(** Maximum residual of the order conditions up to the given order
    (supported up to 4); ~0 for a method of at least that order. *)

val stability_polynomial : t -> float array
(** Coefficients [c_0 .. c_s] of the linear stability function
    R(z) = sum c_k z^k (c_0 = 1, c_1 = sum b, c_k = b^T A^(k-1) 1). For a
    method of order p, c_k = 1/k! for k <= p. *)

val real_stability_interval : t -> float
(** Largest x such that |R(-x')| <= 1 for all x' in [0, x] — the negative
    real-axis stability interval that limits the step size on parabolic
    problems (2.0 for Euler, ~2.79 for RK4). Computed numerically from
    {!stability_polynomial}. *)
