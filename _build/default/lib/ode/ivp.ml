type t = {
  name : string;
  dim : int;
  rhs : tm:float -> y:float array -> dydt:float array -> unit;
  y0 : float array;
  t0 : float;
  t_end : float;
  exact : (float -> float array) option;
}

let v ~name ~rhs ~y0 ?(t0 = 0.0) ~t_end ?exact () =
  let dim = Array.length y0 in
  if dim = 0 then invalid_arg "Ivp.v: empty state";
  if t_end <= t0 then invalid_arg "Ivp.v: t_end must exceed t0";
  { name; dim; rhs; y0 = Array.copy y0; t0; t_end; exact }

let exp_decay ~lambda =
  v ~name:"exp-decay"
    ~rhs:(fun ~tm:_ ~y ~dydt -> dydt.(0) <- -.lambda *. y.(0))
    ~y0:[| 1.0 |] ~t_end:1.0
    ~exact:(fun t -> [| exp (-.lambda *. t) |])
    ()

let harmonic ~omega =
  v ~name:"harmonic"
    ~rhs:(fun ~tm:_ ~y ~dydt ->
      dydt.(0) <- y.(1);
      dydt.(1) <- -.(omega *. omega) *. y.(0))
    ~y0:[| 1.0; 0.0 |] ~t_end:1.0
    ~exact:(fun t -> [| cos (omega *. t); -.omega *. sin (omega *. t) |])
    ()

let diagonal ~lambdas =
  let n = Array.length lambdas in
  v ~name:"diagonal"
    ~rhs:(fun ~tm:_ ~y ~dydt ->
      for i = 0 to n - 1 do
        dydt.(i) <- -.lambdas.(i) *. y.(i)
      done)
    ~y0:(Array.make n 1.0) ~t_end:1.0
    ~exact:(fun t -> Array.map (fun l -> exp (-.l *. t)) lambdas)
    ()

let brusselator =
  let a = 1.0 and b = 1.7 in
  v ~name:"brusselator"
    ~rhs:(fun ~tm:_ ~y ~dydt ->
      let x = y.(0) and z = y.(1) in
      dydt.(0) <- a +. (x *. x *. z) -. ((b +. 1.0) *. x);
      dydt.(1) <- (b *. x) -. (x *. x *. z))
    ~y0:[| 1.0; 1.0 |] ~t_end:2.0 ()

let error_vs_exact t ~y =
  match t.exact with
  | None -> invalid_arg "Ivp.error_vs_exact: no exact solution"
  | Some f ->
      let reference = f t.t_end in
      let err = ref 0.0 in
      Array.iteri
        (fun i v -> err := max !err (abs_float (v -. reference.(i))))
        y;
      !err
