(** Explicit Runge–Kutta and Adams–Bashforth integrators over flat state
    vectors — the reference semantics every Offsite implementation
    variant must reproduce, plus adaptive step-size control with
    embedded pairs. *)

type workspace
(** Preallocated stage storage for repeated stepping. *)

val make_workspace : Tableau.t -> dim:int -> workspace

val step :
  workspace ->
  Tableau.t ->
  Ivp.t ->
  tm:float ->
  h:float ->
  y:float array ->
  out:float array ->
  unit
(** One explicit RK step from [y] at time [tm] with step size [h] into
    [out] ([out] may not alias [y]). *)

val integrate : Tableau.t -> Ivp.t -> steps:int -> float array
(** Fixed-step integration from [t0] to [t_end] in [steps] equal steps;
    returns the final state. *)

type adaptive_stats = {
  accepted : int;
  rejected : int;
  h_min : float;
  h_max : float;
}

val integrate_adaptive :
  Tableau.t ->
  Ivp.t ->
  rtol:float ->
  atol:float ->
  float array * adaptive_stats
(** Embedded-pair integration with a standard I-controller; the tableau
    must provide [b_err]. Raises [Invalid_argument] otherwise. *)

val adams_bashforth : order:int -> Ivp.t -> steps:int -> float array
(** Fixed-step Adams–Bashforth of order 2..4, bootstrapped with RK4. *)

val observed_order : Tableau.t -> Ivp.t -> float
(** Convergence order estimated by Richardson comparison of fixed-step
    runs against a fine-step reference on the same problem — used by the
    tests to confirm each tableau delivers its design order. *)
