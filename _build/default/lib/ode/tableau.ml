type t = {
  name : string;
  s : int;
  a : float array array;
  b : float array;
  c : float array;
  order : int;
  b_err : float array option;
}

let v ~name ~a ~b ~c ~order ?b_err () =
  let s = Array.length b in
  if s = 0 then invalid_arg "Tableau.v: no stages";
  if Array.length a <> s || Array.length c <> s then
    invalid_arg "Tableau.v: dimension mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> s then invalid_arg "Tableau.v: a not square";
      Array.iteri
        (fun j x ->
          if j >= i && x <> 0.0 then
            invalid_arg "Tableau.v: method is not explicit")
        row)
    a;
  (match b_err with
  | Some be when Array.length be <> s ->
      invalid_arg "Tableau.v: embedded weights dimension mismatch"
  | _ -> ());
  { name; s; a; b; c; order; b_err }

(* Build a full s x s matrix from ragged strictly-lower rows. *)
let lower s rows =
  Array.init s (fun i ->
      let row = Array.make s 0.0 in
      if i > 0 then begin
        let src = List.nth rows (i - 1) in
        List.iteri (fun j x -> row.(j) <- x) src
      end;
      row)

let euler =
  v ~name:"euler" ~a:(lower 1 []) ~b:[| 1.0 |] ~c:[| 0.0 |] ~order:1 ()

let heun2 =
  v ~name:"heun2" ~a:(lower 2 [ [ 1.0 ] ]) ~b:[| 0.5; 0.5 |] ~c:[| 0.0; 1.0 |]
    ~order:2 ()

let ralston2 =
  v ~name:"ralston2"
    ~a:(lower 2 [ [ 2.0 /. 3.0 ] ])
    ~b:[| 0.25; 0.75 |] ~c:[| 0.0; 2.0 /. 3.0 |] ~order:2 ()

let kutta3 =
  v ~name:"kutta3"
    ~a:(lower 3 [ [ 0.5 ]; [ -1.0; 2.0 ] ])
    ~b:[| 1.0 /. 6.0; 2.0 /. 3.0; 1.0 /. 6.0 |]
    ~c:[| 0.0; 0.5; 1.0 |] ~order:3 ()

let rk4 =
  v ~name:"rk4"
    ~a:(lower 4 [ [ 0.5 ]; [ 0.0; 0.5 ]; [ 0.0; 0.0; 1.0 ] ])
    ~b:[| 1.0 /. 6.0; 1.0 /. 3.0; 1.0 /. 3.0; 1.0 /. 6.0 |]
    ~c:[| 0.0; 0.5; 0.5; 1.0 |] ~order:4 ()

let kutta38 =
  v ~name:"kutta38"
    ~a:
      (lower 4
         [ [ 1.0 /. 3.0 ]; [ -1.0 /. 3.0; 1.0 ]; [ 1.0; -1.0; 1.0 ] ])
    ~b:[| 0.125; 0.375; 0.375; 0.125 |]
    ~c:[| 0.0; 1.0 /. 3.0; 2.0 /. 3.0; 1.0 |]
    ~order:4 ()

let rkf45 =
  v ~name:"rkf45"
    ~a:
      (lower 6
         [ [ 0.25 ];
           [ 3.0 /. 32.0; 9.0 /. 32.0 ];
           [ 1932.0 /. 2197.0; -7200.0 /. 2197.0; 7296.0 /. 2197.0 ];
           [ 439.0 /. 216.0; -8.0; 3680.0 /. 513.0; -845.0 /. 4104.0 ];
           [ -8.0 /. 27.0; 2.0; -3544.0 /. 2565.0; 1859.0 /. 4104.0;
             -11.0 /. 40.0 ] ])
    ~b:
      [| 16.0 /. 135.0; 0.0; 6656.0 /. 12825.0; 28561.0 /. 56430.0;
         -9.0 /. 50.0; 2.0 /. 55.0 |]
    ~c:[| 0.0; 0.25; 0.375; 12.0 /. 13.0; 1.0; 0.5 |]
    ~order:5
    ~b_err:
      [| 25.0 /. 216.0; 0.0; 1408.0 /. 2565.0; 2197.0 /. 4104.0; -0.2; 0.0 |]
    ()

let cash_karp =
  v ~name:"cash-karp"
    ~a:
      (lower 6
         [ [ 0.2 ];
           [ 3.0 /. 40.0; 9.0 /. 40.0 ];
           [ 0.3; -0.9; 1.2 ];
           [ -11.0 /. 54.0; 2.5; -70.0 /. 27.0; 35.0 /. 27.0 ];
           [ 1631.0 /. 55296.0; 175.0 /. 512.0; 575.0 /. 13824.0;
             44275.0 /. 110592.0; 253.0 /. 4096.0 ] ])
    ~b:
      [| 37.0 /. 378.0; 0.0; 250.0 /. 621.0; 125.0 /. 594.0; 0.0;
         512.0 /. 1771.0 |]
    ~c:[| 0.0; 0.2; 0.3; 0.6; 1.0; 0.875 |]
    ~order:5
    ~b_err:
      [| 2825.0 /. 27648.0; 0.0; 18575.0 /. 48384.0; 13525.0 /. 55296.0;
         277.0 /. 14336.0; 0.25 |]
    ()

let dopri5 =
  v ~name:"dopri5"
    ~a:
      (lower 7
         [ [ 0.2 ];
           [ 3.0 /. 40.0; 9.0 /. 40.0 ];
           [ 44.0 /. 45.0; -56.0 /. 15.0; 32.0 /. 9.0 ];
           [ 19372.0 /. 6561.0; -25360.0 /. 2187.0; 64448.0 /. 6561.0;
             -212.0 /. 729.0 ];
           [ 9017.0 /. 3168.0; -355.0 /. 33.0; 46732.0 /. 5247.0;
             49.0 /. 176.0; -5103.0 /. 18656.0 ];
           [ 35.0 /. 384.0; 0.0; 500.0 /. 1113.0; 125.0 /. 192.0;
             -2187.0 /. 6784.0; 11.0 /. 84.0 ] ])
    ~b:
      [| 35.0 /. 384.0; 0.0; 500.0 /. 1113.0; 125.0 /. 192.0;
         -2187.0 /. 6784.0; 11.0 /. 84.0; 0.0 |]
    ~c:[| 0.0; 0.2; 0.3; 0.8; 8.0 /. 9.0; 1.0; 1.0 |]
    ~order:5
    ~b_err:
      [| 5179.0 /. 57600.0; 0.0; 7571.0 /. 16695.0; 393.0 /. 640.0;
         -92097.0 /. 339200.0; 187.0 /. 2100.0; 0.025 |]
    ()

let all =
  [ euler; heun2; ralston2; kutta3; rk4; kutta38; rkf45; cash_karp; dopri5 ]

let find name = List.find (fun t -> t.name = name) all

(* Gauss-Legendre collocation bases for the PIRK corrector. *)
let gauss_base = function
  | 1 -> ([| [| 0.5 |] |], [| 1.0 |], [| 0.5 |])
  | 2 ->
      let r3 = sqrt 3.0 in
      ( [| [| 0.25; 0.25 -. (r3 /. 6.0) |];
           [| 0.25 +. (r3 /. 6.0); 0.25 |] |],
        [| 0.5; 0.5 |],
        [| 0.5 -. (r3 /. 6.0); 0.5 +. (r3 /. 6.0) |] )
  | _ -> invalid_arg "Tableau.pirk: 1 or 2 base stages supported"

let pirk ~stages ~iterations =
  if iterations < 1 then invalid_arg "Tableau.pirk: iterations must be >= 1";
  let base_a, base_b, base_c = gauss_base stages in
  let s = stages * (iterations + 1) in
  let a = Array.make_matrix s s 0.0 in
  let c = Array.make s 0.0 in
  let b = Array.make s 0.0 in
  for j = 0 to iterations do
    for i = 0 to stages - 1 do
      let row = (j * stages) + i in
      c.(row) <- base_c.(i);
      if j > 0 then
        for l = 0 to stages - 1 do
          a.(row).(((j - 1) * stages) + l) <- base_a.(i).(l)
        done;
      if j = iterations then b.(row) <- base_b.(i)
    done
  done;
  let order = min (2 * stages) (iterations + 1) in
  v ~name:(Printf.sprintf "pirk-s%d-m%d" stages iterations) ~a ~b ~c ~order ()

let weight_check t = abs_float (Array.fold_left ( +. ) 0.0 t.b -. 1.0)

let order_residual t p =
  if p < 1 || p > 4 then
    invalid_arg "Tableau.order_residual: orders 1..4 supported";
  let s = t.s in
  let sum f =
    let acc = ref 0.0 in
    for i = 0 to s - 1 do
      acc := !acc +. f i
    done;
    !acc
  in
  let sum2 f =
    sum (fun i -> sum (fun j -> f i j))
  in
  let sum3 f = sum (fun i -> sum (fun j -> sum (fun k -> f i j k))) in
  let conds =
    [ (1, sum (fun i -> t.b.(i)) -. 1.0);
      (2, sum (fun i -> t.b.(i) *. t.c.(i)) -. 0.5);
      (3, sum (fun i -> t.b.(i) *. t.c.(i) *. t.c.(i)) -. (1.0 /. 3.0));
      (3, sum2 (fun i j -> t.b.(i) *. t.a.(i).(j) *. t.c.(j)) -. (1.0 /. 6.0));
      (4, sum (fun i -> t.b.(i) *. (t.c.(i) ** 3.0)) -. 0.25);
      ( 4,
        sum2 (fun i j -> t.b.(i) *. t.c.(i) *. t.a.(i).(j) *. t.c.(j))
        -. 0.125 );
      ( 4,
        sum2 (fun i j -> t.b.(i) *. t.a.(i).(j) *. t.c.(j) *. t.c.(j))
        -. (1.0 /. 12.0) );
      ( 4,
        sum3 (fun i j k -> t.b.(i) *. t.a.(i).(j) *. t.a.(j).(k) *. t.c.(k))
        -. (1.0 /. 24.0) ) ]
  in
  List.fold_left
    (fun acc (q, residual) -> if q <= p then max acc (abs_float residual) else acc)
    0.0 conds

let stability_polynomial t =
  let s = t.s in
  (* v_k = A^(k-1) * ones; c_k = b . v_k *)
  let coeffs = Array.make (s + 1) 0.0 in
  coeffs.(0) <- 1.0;
  let v = Array.make s 1.0 in
  for k = 1 to s do
    let dot = ref 0.0 in
    for i = 0 to s - 1 do
      dot := !dot +. (t.b.(i) *. v.(i))
    done;
    coeffs.(k) <- !dot;
    if k < s then begin
      let next = Array.make s 0.0 in
      for i = 0 to s - 1 do
        for j = 0 to s - 1 do
          next.(i) <- next.(i) +. (t.a.(i).(j) *. v.(j))
        done
      done;
      Array.blit next 0 v 0 s
    end
  done;
  coeffs

let real_stability_interval t =
  let coeffs = stability_polynomial t in
  let r_at x =
    (* Horner evaluation of R(-x). *)
    let z = -.x in
    let acc = ref 0.0 in
    for k = Array.length coeffs - 1 downto 0 do
      acc := (!acc *. z) +. coeffs.(k)
    done;
    abs_float !acc
  in
  (* Scan outward for the first violation, then bisect. *)
  let step = 0.01 in
  let rec scan x =
    if x > 100.0 then 100.0
    else if r_at x > 1.0 +. 1e-12 then begin
      let rec bisect lo hi n =
        if n = 0 then lo
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if r_at mid > 1.0 +. 1e-12 then bisect lo mid (n - 1)
          else bisect mid hi (n - 1)
        end
      in
      bisect (x -. step) x 40
    end
    else scan (x +. step)
  in
  scan step
