type workspace = { k : float array array; ytmp : float array }

let make_workspace (tab : Tableau.t) ~dim =
  { k = Array.init tab.Tableau.s (fun _ -> Array.make dim 0.0);
    ytmp = Array.make dim 0.0 }

let step ws (tab : Tableau.t) (ivp : Ivp.t) ~tm ~h ~y ~out =
  let dim = ivp.Ivp.dim in
  let s = tab.Tableau.s in
  for i = 0 to s - 1 do
    let ytmp = ws.ytmp in
    Array.blit y 0 ytmp 0 dim;
    for j = 0 to i - 1 do
      let aij = tab.Tableau.a.(i).(j) in
      if aij <> 0.0 then begin
        let kj = ws.k.(j) in
        for d = 0 to dim - 1 do
          ytmp.(d) <- ytmp.(d) +. (h *. aij *. kj.(d))
        done
      end
    done;
    ivp.Ivp.rhs ~tm:(tm +. (tab.Tableau.c.(i) *. h)) ~y:ytmp ~dydt:ws.k.(i)
  done;
  Array.blit y 0 out 0 dim;
  for i = 0 to s - 1 do
    let bi = tab.Tableau.b.(i) in
    if bi <> 0.0 then begin
      let ki = ws.k.(i) in
      for d = 0 to dim - 1 do
        out.(d) <- out.(d) +. (h *. bi *. ki.(d))
      done
    end
  done

let integrate tab (ivp : Ivp.t) ~steps =
  if steps <= 0 then invalid_arg "Rk.integrate: steps must be positive";
  let dim = ivp.Ivp.dim in
  let ws = make_workspace tab ~dim in
  let h = (ivp.Ivp.t_end -. ivp.Ivp.t0) /. float_of_int steps in
  let y = Array.copy ivp.Ivp.y0 in
  let out = Array.make dim 0.0 in
  let tm = ref ivp.Ivp.t0 in
  for _ = 1 to steps do
    step ws tab ivp ~tm:!tm ~h ~y ~out;
    Array.blit out 0 y 0 dim;
    tm := !tm +. h
  done;
  y

type adaptive_stats = {
  accepted : int;
  rejected : int;
  h_min : float;
  h_max : float;
}

let integrate_adaptive (tab : Tableau.t) (ivp : Ivp.t) ~rtol ~atol =
  let b_err =
    match tab.Tableau.b_err with
    | Some b -> b
    | None -> invalid_arg "Rk.integrate_adaptive: tableau has no embedded pair"
  in
  let dim = ivp.Ivp.dim in
  let ws = make_workspace tab ~dim in
  let y = Array.copy ivp.Ivp.y0 in
  let out = Array.make dim 0.0 and out_low = Array.make dim 0.0 in
  let tm = ref ivp.Ivp.t0 in
  let h = ref ((ivp.Ivp.t_end -. ivp.Ivp.t0) /. 100.0) in
  let accepted = ref 0 and rejected = ref 0 in
  let h_min = ref infinity and h_max = ref 0.0 in
  let low_tab = { tab with Tableau.b = b_err } in
  let exponent = 1.0 /. float_of_int tab.Tableau.order in
  while !tm < ivp.Ivp.t_end -. 1e-14 do
    let h_now = min !h (ivp.Ivp.t_end -. !tm) in
    step ws tab ivp ~tm:!tm ~h:h_now ~y ~out;
    (* Reuse the same stage values for the embedded solution. *)
    Array.blit y 0 out_low 0 dim;
    for i = 0 to tab.Tableau.s - 1 do
      let bi = low_tab.Tableau.b.(i) in
      if bi <> 0.0 then begin
        let ki = ws.k.(i) in
        for d = 0 to dim - 1 do
          out_low.(d) <- out_low.(d) +. (h_now *. bi *. ki.(d))
        done
      end
    done;
    let err = ref 0.0 in
    for d = 0 to dim - 1 do
      let sc = atol +. (rtol *. max (abs_float y.(d)) (abs_float out.(d))) in
      let e = (out.(d) -. out_low.(d)) /. sc in
      err := !err +. (e *. e)
    done;
    let err = sqrt (!err /. float_of_int dim) in
    if err <= 1.0 then begin
      incr accepted;
      Array.blit out 0 y 0 dim;
      tm := !tm +. h_now;
      h_min := min !h_min h_now;
      h_max := max !h_max h_now
    end
    else incr rejected;
    let factor = 0.9 *. (max err 1e-10 ** -.exponent) in
    h := h_now *. min 5.0 (max 0.2 factor)
  done;
  ( y,
    { accepted = !accepted;
      rejected = !rejected;
      h_min = !h_min;
      h_max = !h_max } )

let ab_coeffs = function
  | 2 -> [| 1.5; -0.5 |]
  | 3 -> [| 23.0 /. 12.0; -16.0 /. 12.0; 5.0 /. 12.0 |]
  | 4 -> [| 55.0 /. 24.0; -59.0 /. 24.0; 37.0 /. 24.0; -9.0 /. 24.0 |]
  | _ -> invalid_arg "Rk.adams_bashforth: orders 2..4 supported"

let adams_bashforth ~order (ivp : Ivp.t) ~steps =
  let coeffs = ab_coeffs order in
  let k = Array.length coeffs in
  if steps < k then invalid_arg "Rk.adams_bashforth: too few steps";
  let dim = ivp.Ivp.dim in
  let h = (ivp.Ivp.t_end -. ivp.Ivp.t0) /. float_of_int steps in
  (* History of f evaluations, newest first. *)
  let history = Array.init k (fun _ -> Array.make dim 0.0) in
  let y = Array.copy ivp.Ivp.y0 in
  let out = Array.make dim 0.0 in
  let ws = make_workspace Tableau.rk4 ~dim in
  let tm = ref ivp.Ivp.t0 in
  ivp.Ivp.rhs ~tm:!tm ~y ~dydt:history.(k - 1);
  (* Bootstrap the first k-1 points with RK4. *)
  for i = 1 to k - 1 do
    step ws Tableau.rk4 ivp ~tm:!tm ~h ~y ~out;
    Array.blit out 0 y 0 dim;
    tm := !tm +. h;
    ivp.Ivp.rhs ~tm:!tm ~y ~dydt:history.(k - 1 - i)
  done;
  for _ = k to steps do
    for d = 0 to dim - 1 do
      let acc = ref y.(d) in
      for j = 0 to k - 1 do
        acc := !acc +. (h *. coeffs.(j) *. history.(j).(d))
      done;
      out.(d) <- !acc
    done;
    Array.blit out 0 y 0 dim;
    tm := !tm +. h;
    (* Rotate history: drop the oldest, evaluate at the new point. *)
    let oldest = history.(k - 1) in
    for j = k - 1 downto 1 do
      history.(j) <- history.(j - 1)
    done;
    history.(0) <- oldest;
    ivp.Ivp.rhs ~tm:!tm ~y ~dydt:history.(0)
  done;
  y

let max_norm_diff a b =
  let err = ref 0.0 in
  Array.iteri (fun i v -> err := max !err (abs_float (v -. b.(i)))) a;
  !err

let observed_order tab ivp =
  let reference = integrate tab ivp ~steps:1024 in
  let coarse = integrate tab ivp ~steps:8 in
  let fine = integrate tab ivp ~steps:16 in
  let e1 = max_norm_diff coarse reference in
  let e2 = max_norm_diff fine reference in
  log (e1 /. e2) /. log 2.0
