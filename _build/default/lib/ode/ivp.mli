(** Initial value problems y' = f(t, y), the workload of the explicit
    methods Offsite tunes. Besides the classic scalar/small-system test
    problems used to validate the integrators, PDE-derived problems with
    stencil right-hand sides are built by {!Pde}. *)

type t = {
  name : string;
  dim : int;
  rhs : tm:float -> y:float array -> dydt:float array -> unit;
      (** writes f(tm, y) into [dydt]; must not retain the arrays *)
  y0 : float array;
  t0 : float;
  t_end : float;
  exact : (float -> float array) option;  (** analytic solution, if any *)
}

val v :
  name:string ->
  rhs:(tm:float -> y:float array -> dydt:float array -> unit) ->
  y0:float array ->
  ?t0:float ->
  t_end:float ->
  ?exact:(float -> float array) ->
  unit ->
  t
(** Validating constructor ([dim] is [Array.length y0], positive;
    [t_end > t0]). *)

val exp_decay : lambda:float -> t
(** y' = -lambda y, y(0) = 1, exact [exp (-lambda t)]. *)

val harmonic : omega:float -> t
(** Harmonic oscillator as a 2-system; exact (cos, -omega sin). *)

val diagonal : lambdas:float array -> t
(** Decoupled linear system y_i' = -lambda_i y_i with exact solution. *)

val brusselator : t
(** The (non-stiff parameterisation of the) Brusselator: a nonlinear
    2-system without closed-form solution; exercises nonlinear RHS. *)

val error_vs_exact : t -> y:float array -> float
(** Max-norm error of [y] against the exact solution at [t_end]; raises
    [Invalid_argument] if the problem has no exact solution. *)
