module Grid = Yasksite_grid.Grid
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Compile = Yasksite_stencil.Compile
open Yasksite_stencil.Dsl

type boundary = Dirichlet of float | Periodic

type t = {
  name : string;
  spec : Spec.t;
  rank : int;
  dims : int array;
  dx : float;
  boundary : boundary;
  init : int array -> float;
  exact : (float -> int array -> float) option;
}

let pi = 4.0 *. atan 1.0

let laplacian_expr ~rank ~coeff =
  let axis_neighbours =
    match rank with
    | 1 -> [ fld [ -1 ]; fld [ 1 ] ]
    | 2 -> [ fld [ -1; 0 ]; fld [ 1; 0 ]; fld [ 0; -1 ]; fld [ 0; 1 ] ]
    | _ ->
        [ fld [ -1; 0; 0 ]; fld [ 1; 0; 0 ]; fld [ 0; -1; 0 ];
          fld [ 0; 1; 0 ]; fld [ 0; 0; -1 ]; fld [ 0; 0; 1 ] ]
  in
  let center = fld (List.init rank (fun _ -> 0)) in
  c coeff *: (sum axis_neighbours -: (c (2.0 *. float_of_int rank) *: center))

let heat ~rank ~n ~alpha =
  if rank < 1 || rank > 3 then invalid_arg "Pde.heat: rank must be 1..3";
  if n < 2 then invalid_arg "Pde.heat: need at least two interior points";
  let dx = 1.0 /. float_of_int (n + 1) in
  let expr = laplacian_expr ~rank ~coeff:(alpha /. (dx *. dx)) in
  let spec = Spec.v ~name:(Printf.sprintf "heat-%dd-rhs" rank) ~rank expr in
  let coord i = float_of_int (i + 1) *. dx in
  let mode idx =
    Array.fold_left (fun acc i -> acc *. sin (pi *. coord i)) 1.0 idx
  in
  let decay tm = exp (-.float_of_int rank *. alpha *. pi *. pi *. tm) in
  { name = Printf.sprintf "heat-%dd-n%d" rank n;
    spec;
    rank;
    dims = Array.make rank n;
    dx;
    boundary = Dirichlet 0.0;
    init = mode;
    exact = Some (fun tm idx -> decay tm *. mode idx) }

let advection_1d ~n ~velocity =
  if velocity <= 0.0 then invalid_arg "Pde.advection_1d: velocity must be > 0";
  let dx = 1.0 /. float_of_int n in
  let a = velocity /. dx in
  (* Upwind: du/dt = -v (u_i - u_{i-1}) / dx *)
  let expr = c a *: (fld [ -1 ] -: fld [ 0 ]) in
  let spec = Spec.v ~name:"advection-1d-rhs" ~rank:1 expr in
  let profile x = sin (2.0 *. pi *. x) in
  { name = Printf.sprintf "advection-1d-n%d" n;
    spec;
    rank = 1;
    dims = [| n |];
    dx;
    boundary = Periodic;
    init = (fun idx -> profile (float_of_int idx.(0) *. dx));
    exact =
      Some
        (fun tm idx ->
          let x = (float_of_int idx.(0) *. dx) -. (velocity *. tm) in
          profile (x -. floor x)) }

let advection_2d ~n ~velocity =
  let vy, vx = velocity in
  if vy <= 0.0 || vx <= 0.0 then
    invalid_arg "Pde.advection_2d: velocity components must be > 0";
  let dx = 1.0 /. float_of_int n in
  let ay = vy /. dx and ax = vx /. dx in
  let expr =
    (c ay *: (fld [ -1; 0 ] -: fld [ 0; 0 ]))
    +: (c ax *: (fld [ 0; -1 ] -: fld [ 0; 0 ]))
  in
  let spec = Spec.v ~name:"advection-2d-rhs" ~rank:2 expr in
  let profile y x = sin (2.0 *. pi *. y) *. sin (2.0 *. pi *. x) in
  let frac v = v -. floor v in
  { name = Printf.sprintf "advection-2d-n%d" n;
    spec;
    rank = 2;
    dims = [| n; n |];
    dx;
    boundary = Periodic;
    init =
      (fun idx ->
        profile (float_of_int idx.(0) *. dx) (float_of_int idx.(1) *. dx));
    exact =
      Some
        (fun tm idx ->
          profile
            (frac ((float_of_int idx.(0) *. dx) -. (vy *. tm)))
            (frac ((float_of_int idx.(1) *. dx) -. (vx *. tm)))) }

let fisher_kpp ~rank ~n ~diffusion ~rate =
  if rank < 1 || rank > 3 then invalid_arg "Pde.fisher_kpp: rank must be 1..3";
  if n < 2 then invalid_arg "Pde.fisher_kpp: need at least two interior points";
  if diffusion <= 0.0 then invalid_arg "Pde.fisher_kpp: diffusion must be > 0";
  let dx = 1.0 /. float_of_int (n + 1) in
  let center = fld (List.init rank (fun _ -> 0)) in
  (* u' = D lap u + r u - r u^2 *)
  let expr =
    laplacian_expr ~rank ~coeff:(diffusion /. (dx *. dx))
    +: (c rate *: center)
    -: (c rate *: center *: center)
  in
  let spec =
    Spec.v ~name:(Printf.sprintf "fisher-kpp-%dd-rhs" rank) ~rank expr
  in
  let coord i = float_of_int (i + 1) *. dx in
  let bump idx =
    Array.fold_left
      (fun acc i ->
        let x = coord i in
        acc *. exp (-40.0 *. ((x -. 0.5) ** 2.0)))
      0.8 idx
  in
  { name = Printf.sprintf "fisher-kpp-%dd-n%d" rank n;
    spec;
    rank;
    dims = Array.make rank n;
    dx;
    boundary = Dirichlet 0.0;
    init = bump;
    exact = None }

let halo t = Analysis.halo (Analysis.of_spec t.spec)

let apply_boundary t g =
  match t.boundary with
  | Dirichlet v -> Grid.halo_dirichlet g v
  | Periodic -> Grid.halo_periodic g

let init_grid t =
  let g = Grid.create ~halo:(halo t) ~dims:t.dims () in
  Grid.fill g ~f:t.init;
  apply_boundary t g;
  g

(* Flat-vector view: copy the state in, refresh halos, sweep the
   stencil, copy the derivative out. *)
let to_ivp t ~t_end =
  let points = Array.fold_left ( * ) 1 t.dims in
  let state = Grid.create ~halo:(halo t) ~dims:t.dims () in
  let eval_at =
    match t.rank with
    | 1 ->
        let f = Compile.compile1 t.spec ~inputs:[| state |] in
        fun (idx : int array) -> f idx.(0)
    | 2 ->
        let f = Compile.compile2 t.spec ~inputs:[| state |] in
        fun idx -> f idx.(0) idx.(1)
    | _ ->
        let f = Compile.compile3 t.spec ~inputs:[| state |] in
        fun idx -> f idx.(0) idx.(1) idx.(2)
  in
  let rhs ~tm:_ ~y ~dydt =
    let pos = ref 0 in
    Grid.iter_interior state ~f:(fun idx ->
        Grid.set state idx y.(!pos);
        incr pos);
    apply_boundary t state;
    let pos = ref 0 in
    Grid.iter_interior state ~f:(fun idx ->
        dydt.(!pos) <- eval_at idx;
        incr pos)
  in
  let y0 = Array.make points 0.0 in
  let pos = ref 0 in
  let tmp = init_grid t in
  Grid.iter_interior tmp ~f:(fun idx ->
      y0.(!pos) <- Grid.get tmp idx;
      incr pos);
  let exact =
    Option.map
      (fun f tm ->
        let out = Array.make points 0.0 in
        let pos = ref 0 in
        Grid.iter_interior state ~f:(fun idx ->
            out.(!pos) <- f tm idx;
            incr pos);
        out)
      t.exact
  in
  Ivp.v ~name:t.name ~rhs ~y0 ~t_end ?exact ()

let grid_error_vs_exact t ~tm g =
  match t.exact with
  | None -> invalid_arg "Pde.grid_error_vs_exact: no exact solution"
  | Some f ->
      let err = ref 0.0 in
      Grid.iter_interior g ~f:(fun idx ->
          err := max !err (abs_float (Grid.get g idx -. f tm idx)));
      !err
