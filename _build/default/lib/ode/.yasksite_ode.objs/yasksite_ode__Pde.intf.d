lib/ode/pde.mli: Ivp Yasksite_grid Yasksite_stencil
