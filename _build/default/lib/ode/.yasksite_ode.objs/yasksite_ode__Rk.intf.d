lib/ode/rk.mli: Ivp Tableau
