lib/ode/tableau.mli:
