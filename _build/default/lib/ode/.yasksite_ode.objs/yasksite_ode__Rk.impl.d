lib/ode/rk.ml: Array Ivp Tableau
