lib/ode/pde.ml: Array Ivp List Option Printf Yasksite_grid Yasksite_stencil
