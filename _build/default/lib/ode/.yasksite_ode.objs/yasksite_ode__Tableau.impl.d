lib/ode/tableau.ml: Array List Printf
