lib/ode/ivp.mli:
