lib/ode/ivp.ml: Array
