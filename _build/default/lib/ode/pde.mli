(** Method-of-lines PDE problems whose right-hand side is a stencil —
    the workload class for which Offsite consults YaskSite: every RK
    stage evaluation is a stencil sweep.

    A problem carries the spatial discretisation (a resolved
    {!Yasksite_stencil.Spec} computing du/dt from the state field), the
    boundary condition, the initial condition, and the analytic solution
    where available. It can be flattened into a generic {!Ivp} for the
    reference integrators, or executed grid-natively by the Offsite
    variant machinery. *)

type boundary = Dirichlet of float | Periodic

type t = {
  name : string;
  spec : Yasksite_stencil.Spec.t;
      (** resolved stencil computing du/dt (field 0 = u) *)
  rank : int;
  dims : int array;
  dx : float;
  boundary : boundary;
  init : int array -> float;
  exact : (float -> int array -> float) option;
      (** analytic solution u(t, i) at grid point i *)
}

val heat : rank:int -> n:int -> alpha:float -> t
(** Heat equation on the unit (hyper)cube with homogeneous Dirichlet
    boundaries, [n] interior points per dimension, second-order central
    differences; the exact solution is the decaying fundamental sine
    mode. *)

val advection_1d : n:int -> velocity:float -> t
(** 1D linear advection with periodic boundary and first-order upwind
    discretisation ([velocity > 0]); the listed exact solution is the
    translated initial profile of the {e PDE} (the discretisation adds
    numerical diffusion). *)

val advection_2d : n:int -> velocity:float * float -> t
(** 2D upwind advection, periodic, both velocity components positive. *)

val fisher_kpp : rank:int -> n:int -> diffusion:float -> rate:float -> t
(** Fisher–KPP reaction–diffusion, u' = D lap u + r u (1 - u), with
    homogeneous Dirichlet boundaries and a central bump initial
    condition. Nonlinear (the stencil expression contains u*u), no
    closed-form solution — exercises the nonlinear-RHS path of the
    variant machinery. *)

val apply_boundary : t -> Yasksite_grid.Grid.t -> unit
(** Fill a grid's halo according to the problem's boundary condition. *)

val halo : t -> int array
(** Halo width the RHS stencil requires. *)

val init_grid : t -> Yasksite_grid.Grid.t
(** Fresh grid holding the initial condition with valid halo. *)

val to_ivp : t -> t_end:float -> Ivp.t
(** Flat-vector view of the problem for the reference integrators. The
    IVP's exact solution is populated from the problem's, when present. *)

val grid_error_vs_exact : t -> tm:float -> Yasksite_grid.Grid.t -> float
(** Max-norm error of a state grid against the analytic solution. *)
