(** Kernel autotuning: analytic (model-ranked, the YaskSite approach)
    versus empirical (run every candidate, the baseline it replaces),
    with cost accounting for the paper's tuning-cost comparison.

    The analytic tuner never executes a kernel: it ranks the whole
    parameter space with the ECM model and returns the top
    configuration. The empirical tuner executes every candidate on the
    simulated machine and picks the best measured one. Their cost ratio
    and the quality gap of the analytic choice are the subject of
    experiment E9. *)

type result = {
  chosen : Yasksite_ecm.Config.t;
  predicted_lups : float option;
      (** the model's score for [chosen] (None for the empirical tuner) *)
  measured_lups : float;
      (** validation measurement of [chosen] at full thread count *)
  model_evaluations : int;  (** analytic work performed *)
  kernel_runs : int;  (** kernels executed (incl. the validation run) *)
  wall_seconds : float;  (** CPU cost of the whole tuning pass *)
}

val tune_analytic :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  threads:int ->
  result
(** Rank the full advisor space with the ECM model, then run one
    validation measurement of the winner. *)

val tune_empirical :
  ?space:Yasksite_ecm.Config.t list ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  threads:int ->
  result
(** Execute every configuration of [space] (default: the same advisor
    space the analytic tuner ranks) and keep the best measured one. *)

type comparison = {
  analytic : result;
  empirical : result;
  cost_ratio : float;
      (** empirical kernel-runs per analytic kernel-run (>= 1 when the
          model pays off) *)
  wall_ratio : float;  (** empirical wall time / analytic wall time *)
  quality : float;
      (** measured performance of the analytic choice relative to the
          empirical optimum (1.0 = found the same optimum) *)
}

val compare_strategies :
  ?space:Yasksite_ecm.Config.t list ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  threads:int ->
  comparison
(** Run both tuners on the same kernel and summarise the trade-off. *)
