lib/tuner/tuner.ml: List Sys Yasksite_arch Yasksite_ecm Yasksite_engine Yasksite_stencil
