lib/tuner/tuner.mli: Yasksite_arch Yasksite_ecm Yasksite_stencil
