lib/cachesim/hierarchy.ml: Array Level Yasksite_arch
