lib/cachesim/hierarchy.mli: Yasksite_arch
