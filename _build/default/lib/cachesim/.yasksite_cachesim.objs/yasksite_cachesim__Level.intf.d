lib/cachesim/level.mli: Yasksite_arch
