lib/cachesim/level.ml: Array Bytes Yasksite_arch
