module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Analysis = Yasksite_stencil.Analysis

type condition = All_fits | Outer_reuse | Row_reuse | No_reuse

type boundary = {
  level_name : string;
  condition : condition;
  lines_per_cl : float;
  bytes_per_lup : float;
}

let safety = 0.5

let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* Distinct fold-group counts of a field's offsets along one dimension,
   and along pairs of dimensions. *)
let groups_along offsets_list ~dim ~fold =
  List.map (fun o -> floor_div o.(dim) fold.(dim)) offsets_list
  |> List.sort_uniq compare |> List.length

let groups_along2 offsets_list ~dim0 ~dim1 ~fold =
  List.map
    (fun o ->
      (floor_div o.(dim0) fold.(dim0), floor_div o.(dim1) fold.(dim1)))
    offsets_list
  |> List.sort_uniq compare |> List.length

let span offsets_list ~dim =
  let ds = List.map (fun o -> o.(dim)) offsets_list in
  match ds with
  | [] -> 0
  | d :: rest ->
      let lo = List.fold_left min d rest and hi = List.fold_left max d rest in
      hi - lo + 1

(* Per-field traffic multiplicity (line fetches per consumed line) at a
   cache level of [size] bytes, for the given block extents and fold.

   A fold block spans [fold.(d)] lattice layers in each outer dimension
   d, so consuming a folded line takes that many row/plane visits. This
   enters twice: the working set needed for reuse grows to at least the
   fold span, and when reuse is broken at this level, every uncached
   visit re-fetches the line (the fold span multiplies the miss count —
   the "wrong-dimension fold" penalty the simulator exhibits). *)
let field_multiplicities (a : Analysis.t) ~block ~fold ~size =
  let rank = a.spec.rank in
  let fields = a.read_fields in
  let offs f = Analysis.accesses_of_field a f in
  let budget = safety *. float_of_int size in
  match rank with
  | 1 ->
      (* A 1D stencil's reuse lives within a handful of lines. *)
      (Outer_reuse, List.map (fun f -> (f, 1.0)) fields)
  | 2 ->
      (* Stream along y (dim 0) within an x-block of bx (dim 1). *)
      let bx = block.(1) in
      let fy = fold.(0) in
      let ws_rows =
        List.fold_left
          (fun acc f ->
            acc
            +. float_of_int (max (span (offs f) ~dim:0) fy)
               *. float_of_int bx *. 8.0)
          0.0 fields
      in
      if ws_rows <= budget then
        (Outer_reuse, List.map (fun f -> (f, 1.0)) fields)
      else
        ( No_reuse,
          List.map
            (fun f ->
              ( f,
                float_of_int (groups_along (offs f) ~dim:0 ~fold)
                *. float_of_int fy ))
            fields )
  | _ ->
      (* 3D: stream along z (dim 0) within a (by, bx) block column. *)
      let by = block.(1) and bx = block.(2) in
      let fz = fold.(0) and fy = fold.(1) in
      let plane_bytes = float_of_int (by * bx * 8) in
      let ws_planes =
        List.fold_left
          (fun acc f ->
            acc
            +. (float_of_int (max (span (offs f) ~dim:0) fz) *. plane_bytes))
          0.0 fields
      in
      if ws_planes <= budget then
        (Outer_reuse, List.map (fun f -> (f, 1.0)) fields)
      else begin
        let row_bytes = float_of_int (bx * 8) in
        let ws_rows =
          List.fold_left
            (fun acc f ->
              let z_layers = groups_along (offs f) ~dim:0 ~fold in
              acc
              +. float_of_int z_layers
                 *. float_of_int (max (span (offs f) ~dim:1) fy)
                 *. row_bytes)
            0.0 fields
        in
        if ws_rows <= budget then
          ( Row_reuse,
            List.map
              (fun f ->
                ( f,
                  float_of_int (groups_along (offs f) ~dim:0 ~fold)
                  *. float_of_int fz ))
              fields )
        else
          ( No_reuse,
            List.map
              (fun f ->
                ( f,
                  float_of_int (groups_along2 (offs f) ~dim0:0 ~dim1:1 ~fold)
                  *. float_of_int (fz * fy) ))
              fields )
      end

let footprint_bytes (a : Analysis.t) ~dims =
  let points = Array.fold_left ( * ) 1 dims in
  (* All input fields plus the output grid. *)
  8 * points * (a.spec.n_fields + 1)

let boundaries (m : Machine.t) (a : Analysis.t) ~dims ~config =
  if Array.length dims <> a.spec.rank then
    invalid_arg "Lc.boundaries: dims rank mismatch";
  let block = Config.block_extents config ~dims in
  let fold = Config.fold_extents config ~rank:a.spec.rank in
  let lups = Incore.lups_per_cl m in
  let footprint = footprint_bytes a ~dims in
  let nt = config.Config.streaming_stores in
  let n_levels = Array.length m.caches in
  Array.mapi
    (fun k (lvl : Cache_level.t) ->
      let threads = config.Config.threads in
      let size = lvl.size_bytes / min threads lvl.shared_by in
      (* Streaming stores bypass every level and pay one line at the
         memory boundary (no write-allocate, no write-back). *)
      let store_lines =
        if nt then if k = n_levels - 1 then 1.0 else 0.0 else 2.0
      in
      (* Under domain decomposition each core works on its own slice, so
         residency is decided per core: slice footprint vs. cache share.
         Streaming stores bypass residency (MOVNT invalidates cached
         copies), so their memory line remains even when everything
         fits. *)
      if footprint / threads <= size then begin
        let lines_per_cl = if nt && k = n_levels - 1 then 1.0 else 0.0 in
        { level_name = lvl.name;
          condition = All_fits;
          lines_per_cl;
          bytes_per_lup =
            lines_per_cl
            *. float_of_int lvl.line_bytes
            /. float_of_int lups }
      end
      else begin
        let condition, mults =
          field_multiplicities a ~block ~fold ~size
        in
        let read_lines =
          List.fold_left (fun acc (_, mult) -> acc +. mult) 0.0 mults
        in
        let lines_per_cl = read_lines +. store_lines in
        { level_name = lvl.name;
          condition;
          lines_per_cl;
          bytes_per_lup =
            lines_per_cl
            *. float_of_int lvl.line_bytes
            /. float_of_int lups }
      end)
    m.caches

let wavefront_fits (m : Machine.t) (a : Analysis.t) ~dims ~config =
  let wf = config.Config.wavefront in
  if wf <= 1 then true
  else begin
    let block = Config.block_extents config ~dims in
    let llc = Machine.last_level m in
    let size =
      llc.size_bytes / min config.Config.threads llc.shared_by
    in
    (* Moving window of a two-grid wavefront: the fronts span
       [(wf-1) * (r0+1)] planes plus the stencil's own span, and the
       ping-pong pair shares that window. *)
    let rank = a.spec.rank in
    let plane_points =
      match rank with
      | 1 -> 1
      | 2 -> block.(1)
      | _ -> block.(1) * block.(2)
    in
    let r0 =
      List.fold_left
        (fun acc f ->
          List.fold_left
            (fun acc o -> max acc (abs o.(0)))
            acc
            (Analysis.accesses_of_field a f))
        0 a.read_fields
    in
    let planes_in_flight = ((wf - 1) * (r0 + 1)) + (2 * r0) + 1 in
    let ws = float_of_int (planes_in_flight * plane_points * 8 * 2) in
    (* The moving window is the dominant occupant of the last-level
       cache, so it may use more of the capacity than a layer condition
       competing with streaming data. *)
    ws <= 0.7 *. float_of_int size
  end

let mem_bytes_per_lup (m : Machine.t) (a : Analysis.t) ~dims ~config =
  let bs = boundaries m a ~dims ~config in
  let mem = bs.(Array.length bs - 1) in
  let wf = config.Config.wavefront in
  if wf > 1 && wavefront_fits m a ~dims ~config then
    if config.Config.streaming_stores then begin
      (* Streaming stores leave the window on every step; only the load
         side enjoys the temporal reuse. *)
      let store_bytes = 8.0 in
      let load_bytes = mem.bytes_per_lup -. store_bytes in
      (max 0.0 load_bytes /. float_of_int wf) +. store_bytes
    end
    else mem.bytes_per_lup /. float_of_int wf
  else mem.bytes_per_lup
