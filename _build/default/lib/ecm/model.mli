(** The Execution–Cache–Memory performance model: YaskSite's analytic
    predictor. Composes the in-core terms ({!Incore}) with the per-level
    data-transfer terms derived from layer conditions ({!Lc}) according
    to the machine's overlap policy, then scales across cores with
    memory-bandwidth saturation — all without running the kernel. *)

type prediction = {
  config : Config.t;
  incore : Incore.t;
  boundaries : Lc.boundary array;
  t_data : float array;  (** cy/CL per cache boundary (memory last) *)
  t_ecm : float;  (** single-core cycles per cache line of output *)
  cy_per_lup : float;  (** single-core cycles per lattice update *)
  lups_single : float;  (** single-core performance, LUP/s *)
  mem_bytes_per_lup : float;
      (** memory traffic per update (wavefront-reduced if applicable) *)
  lups_saturated : float;
      (** chip-level memory-bandwidth ceiling in LUP/s; [infinity] when
          the working set fits in cache *)
  saturation_cores : int;
      (** smallest core count reaching the ceiling (clamped to the
          machine's core count) *)
  lups_chip : float;  (** predicted LUP/s at [config.threads] cores *)
  flops_chip : float;  (** corresponding FLOP/s *)
}

val predict :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  prediction
(** Evaluate the full model for one configuration. *)

val chip_scaling :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  max_threads:int ->
  (int * float) array
(** Predicted chip performance (LUP/s) for 1..[max_threads] cores; the
    per-core model is re-evaluated at every count because shared-cache
    capacity per core shrinks as threads are added. *)

val summary : prediction -> string
(** One-line rendering: ECM decomposition and headline numbers. *)

val explain :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  prediction ->
  string
(** Multi-line report of how the prediction was built: instruction mix
    and port pressure, per-boundary layer conditions with the working
    sets that decided them, composition rule, and the multicore scaling
    summary (the kerncraft-style "show your work" output). *)
