(** The naive Roofline model: the baseline the ECM model is measured
    against in the ablation experiments.

    Roofline predicts [min(peak_flops, bandwidth * intensity)] using only
    the optimal code balance — it knows nothing about cache-level
    transfer times, layer conditions, blocking or folding, so its
    predictions are configuration-independent and systematically
    optimistic for cache-unfriendly configurations. Comparing its error
    against the ECM model's (experiment E11) quantifies what the paper's
    analytic machinery actually buys. *)

type prediction = {
  flops_bound : float;  (** in-core ceiling, FLOP/s (chip) *)
  memory_bound : float;  (** bandwidth ceiling, FLOP/s (chip) *)
  flops_chip : float;  (** min of the two *)
  lups_chip : float;
  lups_single : float;  (** single-core estimate with one core's share *)
}

val predict :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  threads:int ->
  prediction
(** Classic Roofline with optimal code balance as intensity. A kernel
    with zero flops (pure copy) is treated as bandwidth-bound. *)
