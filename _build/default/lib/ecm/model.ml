module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis

type prediction = {
  config : Config.t;
  incore : Incore.t;
  boundaries : Lc.boundary array;
  t_data : float array;
  t_ecm : float;
  cy_per_lup : float;
  lups_single : float;
  mem_bytes_per_lup : float;
  lups_saturated : float;
  saturation_cores : int;
  lups_chip : float;
  flops_chip : float;
}

let single_core_t_ecm (m : Machine.t) (a : Analysis.t) ~dims ~config =
  let fold = Config.fold_extents config ~rank:a.spec.rank in
  let incore = Incore.analyze m a ~fold in
  (* A wavefront schedule processes single planes of the streamed
     dimension, so a fold extent along it leaves lanes idle. *)
  let lane_waste =
    if config.Config.wavefront > 1 then float_of_int fold.(0) else 1.0
  in
  let incore =
    { incore with
      Incore.t_ol = incore.Incore.t_ol *. lane_waste;
      t_nol = incore.Incore.t_nol *. lane_waste }
  in
  let boundaries = Lc.boundaries m a ~dims ~config in
  let lups = Incore.lups_per_cl m in
  let n = Array.length boundaries in
  (* The memory boundary carries the temporal-blocking and streaming-
     store adjustments; Lc.mem_bytes_per_lup is the single source of
     truth for them. *)
  let mem_bytes = Lc.mem_bytes_per_lup m a ~dims ~config in
  let t_data =
    Array.mapi
      (fun k (b : Lc.boundary) ->
        let bytes_per_lup = if k = n - 1 then mem_bytes else b.bytes_per_lup in
        bytes_per_lup *. float_of_int lups
        /. m.caches.(k).Yasksite_arch.Cache_level.bytes_per_cycle)
      boundaries
  in
  let t_ecm =
    match m.overlap with
    | Machine.Serial ->
        max incore.t_ol
          (incore.t_nol +. Array.fold_left ( +. ) 0.0 t_data)
    | Machine.Overlapping ->
        Array.fold_left max (max incore.t_ol incore.t_nol) t_data
  in
  (incore, boundaries, t_data, t_ecm)

let predict (m : Machine.t) (a : Analysis.t) ~dims ~config =
  let incore, boundaries, t_data, t_ecm =
    single_core_t_ecm m a ~dims ~config
  in
  let lups = float_of_int (Incore.lups_per_cl m) in
  let hz = Machine.cycles_per_second m in
  let lups_single = hz *. lups /. t_ecm in
  let mem_bytes_per_lup = Lc.mem_bytes_per_lup m a ~dims ~config in
  let lups_saturated =
    if mem_bytes_per_lup <= 0.0 then infinity
    else m.mem_bw_chip_gbs *. 1e9 /. mem_bytes_per_lup
  in
  (* Per-core performance at n threads (shared caches divide up). *)
  let single_at n =
    let cfg = { config with Config.threads = n } in
    let _, _, _, t = single_core_t_ecm m a ~dims ~config:cfg in
    hz *. lups /. t
  in
  let chip_at n = min (float_of_int n *. single_at n) lups_saturated in
  let saturation_cores =
    let rec find n =
      if n >= m.cores then m.cores
      else if float_of_int n *. single_at n >= lups_saturated then n
      else find (n + 1)
    in
    if lups_saturated = infinity then m.cores else find 1
  in
  let lups_chip = chip_at config.Config.threads in
  { config; incore; boundaries; t_data; t_ecm;
    cy_per_lup = t_ecm /. lups;
    lups_single; mem_bytes_per_lup; lups_saturated; saturation_cores;
    lups_chip;
    flops_chip = lups_chip *. float_of_int a.flops }

let chip_scaling m a ~dims ~config ~max_threads =
  Array.init max_threads (fun i ->
      let n = i + 1 in
      let p = predict m a ~dims ~config:{ config with Config.threads = n } in
      (n, p.lups_chip))

let summary p =
  let data =
    String.concat " + "
      (Array.to_list (Array.map (fun t -> Printf.sprintf "%.1f" t) p.t_data))
  in
  Printf.sprintf
    "ECM: {%.1f || %.1f | %s} cy/CL -> T=%.1f cy/CL, %.2f GLUP/s single, \
     sat@%d cores, %.2f GLUP/s chip [%s]"
    p.incore.Incore.t_ol p.incore.Incore.t_nol data p.t_ecm
    (p.lups_single /. 1e9) p.saturation_cores (p.lups_chip /. 1e9)
    (Config.describe p.config)

let explain (m : Machine.t) (a : Analysis.t) p =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let i = p.incore in
  line "ECM model for %s on %s [%s]" a.Analysis.spec.Yasksite_stencil.Spec.name
    m.Machine.name (Config.describe p.config);
  line "";
  line "in-core (per %d-update cache line):" (Incore.lups_per_cl m);
  line "  arithmetic: %d FMA + %d add + %d mul per LUP -> T_OL = %.2f cy/CL"
    i.Incore.fma i.Incore.adds i.Incore.muls i.Incore.t_ol;
  line
    "  data moves: %.1f vector loads, %.1f stores, %.1f shuffles -> T_nOL = \
     %.2f cy/CL"
    i.Incore.vector_loads i.Incore.vector_stores i.Incore.shuffles
    i.Incore.t_nol;
  line "";
  line "data transfers (layer conditions at %g cache occupancy):" Lc.safety;
  Array.iteri
    (fun k (b : Lc.boundary) ->
      let cond =
        match b.Lc.condition with
        | Lc.All_fits -> "working set resident"
        | Lc.Outer_reuse -> "outer layer condition holds"
        | Lc.Row_reuse -> "row layer condition holds"
        | Lc.No_reuse -> "no inter-row reuse"
      in
      line "  %-4s %-30s %6.2f lines/CL  %6.1f B/LUP  T = %6.2f cy/CL"
        (b.Lc.level_name ^ ":") cond b.Lc.lines_per_cl b.Lc.bytes_per_lup
        p.t_data.(k))
    p.boundaries;
  line "";
  (match m.Machine.overlap with
  | Machine.Serial ->
      line
        "composition (serial transfers): T = max(T_OL, T_nOL + sum T_data) = \
         %.2f cy/CL"
        p.t_ecm
  | Machine.Overlapping ->
      line
        "composition (overlapping transfers): T = max(T_OL, T_nOL, T_data...) \
         = %.2f cy/CL"
        p.t_ecm);
  line "single core: %.1f MLUP/s (%.2f cy/LUP)" (p.lups_single /. 1e6)
    p.cy_per_lup;
  if p.lups_saturated = infinity then
    line "multicore: no memory ceiling (working set cache-resident)"
  else
    line
      "multicore: memory ceiling %.2f GLUP/s at %.1f B/LUP, saturating at %d \
       of %d cores"
      (p.lups_saturated /. 1e9) p.mem_bytes_per_lup p.saturation_cores
      m.Machine.cores;
  line "at %d threads: %.2f GLUP/s (%.2f GF/s)" p.config.Config.threads
    (p.lups_chip /. 1e9) (p.flops_chip /. 1e9);
  Buffer.contents buf
