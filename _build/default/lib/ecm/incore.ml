module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis
module Expr = Yasksite_stencil.Expr

type t = {
  t_ol : float;
  t_nol : float;
  vector_loads : float;
  vector_stores : float;
  shuffles : float;
  fma : int;
  adds : int;
  muls : int;
}

let lups_per_cl (m : Machine.t) = Machine.line_bytes m / 8

(* Cost of one vectorized double-precision division (cycles per vector). *)
let div_cycles_per_vector = 8.0

let fold_aligned ~fold (a : Expr.access) =
  let ok = ref true in
  Array.iteri
    (fun i d -> if fold.(i) > 1 && d mod fold.(i) <> 0 then ok := false)
    a.offsets;
  !ok

let analyze (m : Machine.t) (a : Analysis.t) ~fold =
  let rank = a.spec.rank in
  if Array.length fold <> rank then invalid_arg "Incore.analyze: fold rank";
  let lanes = m.simd.dp_lanes in
  let lups = lups_per_cl m in
  (* Vectors of work per cache line of output. *)
  let vecs_per_cl = float_of_int lups /. float_of_int lanes in
  (* Loads and shuffles per vector of work. *)
  let loads_per_vec, shuffles_per_vec =
    List.fold_left
      (fun (l, s) acc ->
        if fold_aligned ~fold acc then (l +. 1.0, s)
        else
          (* An unaligned fold access loads its two spanning blocks and
             combines them with a shuffle; adjacent work units share one
             of the blocks, amortising the second load. *)
          (l +. 1.5, s +. 1.0))
      (0.0, 0.0) a.accesses
  in
  let vector_loads = loads_per_vec *. vecs_per_cl in
  let vector_stores = 1.0 *. vecs_per_cl in
  let shuffles = shuffles_per_vec *. vecs_per_cl in
  (* Pair adds with muls into FMAs greedily, as a vectorizing compiler
     would for sum-of-products stencils. *)
  let fma = min a.adds a.muls in
  let adds = a.adds - fma in
  let muls = a.muls - fma in
  (* Arithmetic port pressure per vector of work. *)
  let fma_port_cycles =
    float_of_int (fma + muls) /. float_of_int m.simd.fma_ports
  in
  let add_port_cycles =
    (float_of_int adds +. shuffles_per_vec)
    /. float_of_int m.simd.add_ports
  in
  let div_cycles = float_of_int a.divs *. div_cycles_per_vector in
  let t_ol =
    (max fma_port_cycles add_port_cycles +. div_cycles) *. vecs_per_cl
  in
  (* L1 port pressure: loads and stores issue on distinct ports. *)
  let t_nol =
    max
      (vector_loads /. float_of_int m.simd.load_ports)
      (vector_stores /. float_of_int m.simd.store_ports)
  in
  { t_ol; t_nol; vector_loads; vector_stores; shuffles; fma; adds; muls }
