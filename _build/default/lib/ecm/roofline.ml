module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis

type prediction = {
  flops_bound : float;
  memory_bound : float;
  flops_chip : float;
  lups_chip : float;
  lups_single : float;
}

let predict (m : Machine.t) (a : Analysis.t) ~threads =
  if threads < 1 then invalid_arg "Roofline.predict: threads must be >= 1";
  let flops_per_lup = float_of_int (max a.flops 1) in
  let balance = Analysis.min_code_balance a in
  let intensity = flops_per_lup /. balance in
  let flops_bound = Machine.peak_flops_core m *. float_of_int threads in
  let memory_bound = m.mem_bw_chip_gbs *. 1e9 *. intensity in
  let flops_chip = min flops_bound memory_bound in
  let lups_chip = flops_chip /. flops_per_lup in
  (* One core can draw at most its own memory-link bandwidth. *)
  let core_mem_flops =
    (Machine.last_level m).Yasksite_arch.Cache_level.bytes_per_cycle
    *. Machine.cycles_per_second m *. intensity
  in
  let single = min (Machine.peak_flops_core m) core_mem_flops in
  { flops_bound;
    memory_bound;
    flops_chip;
    lups_chip;
    lups_single = single /. flops_per_lup }
