(** Layer-condition analysis: analytic prediction of the data traffic a
    stencil sweep moves across each cache boundary, as a function of grid
    size, spatial block sizes and vector folding.

    For a 3D stencil streamed along the outer (z) dimension inside a
    (by, bx) block column, reuse across z requires the accessed z-layer
    span of every field to stay cached ("3D layer condition"); failing
    that, reuse across y requires the accessed rows to stay cached ("2D
    layer condition"); failing both, every distinct (z, y) offset group
    of a field fetches its lines separately. Vector folding merges
    offsets that fall into the same fold block, reducing the number of
    distinct groups — YASK's motivation for multi-dimensional folds. *)

type condition =
  | All_fits  (** whole working set resident: no steady-state traffic *)
  | Outer_reuse  (** 3D LC holds (plane reuse) — minimal traffic *)
  | Row_reuse  (** only the 2D LC holds (row reuse) *)
  | No_reuse  (** every offset group misses *)

type boundary = {
  level_name : string;
  condition : condition;
  lines_per_cl : float;
      (** cache lines crossing this boundary per cache line of output
          (i.e. per [lups_per_cl] updates); includes write-allocate and
          write-back of the output *)
  bytes_per_lup : float;
}

val safety : float
(** Fraction of a cache level the layer condition may occupy (0.5, the
    standard LC safety factor). *)

val boundaries :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  boundary array
(** One entry per cache boundary, innermost (L1 <-> L2) first; the last
    entry is the memory boundary. The configured thread count determines
    each shared level's effective per-core capacity. *)

val mem_bytes_per_lup :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  float
(** Memory-boundary traffic per lattice update, after applying the
    temporal-blocking reduction of the configured wavefront depth (if its
    working set fits the last-level cache; otherwise the wavefront brings
    no reduction). *)

val wavefront_fits :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  bool
(** Whether the configured wavefront's working set fits the last-level
    cache share — the validity condition for the temporal-blocking
    traffic reduction. Always true for [wavefront = 1]. *)
