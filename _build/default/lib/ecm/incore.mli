(** In-core execution model: the T_OL / T_nOL terms of the ECM model.

    Counts the SIMD instruction mix one cache line of lattice updates
    needs (arithmetic on the FMA/add ports, loads and stores through the
    L1 ports, shuffles induced by vector folding) and converts it to
    cycles with a throughput port model — the "no data delays" time.

    Units: cycles per cache line of output (cy/CL), i.e. per
    [line_bytes / 8] lattice updates. *)

type t = {
  t_ol : float;
      (** overlapping time: arithmetic port pressure, hidden behind data
          transfers on machines that overlap (and on Intel too) *)
  t_nol : float;
      (** non-overlapping time: L1 load/store port pressure, which data
          transfers can never hide *)
  vector_loads : float;  (** vector loads per CL of output (model) *)
  vector_stores : float;
  shuffles : float;  (** fold-induced cross-lane ops per CL *)
  fma : int;  (** fused multiply-adds per LUP after pairing *)
  adds : int;  (** unpaired adds per LUP *)
  muls : int;  (** unpaired muls per LUP *)
}

val analyze :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  fold:int array ->
  t
(** [analyze m a ~fold] computes the in-core terms for stencil [a] on
    machine [m] with vector-fold extents [fold] (all ones = linear
    layout). A folded access whose offset is not fold-aligned in every
    folded dimension costs two loads plus one shuffle — YASK's
    "unaligned fold access" penalty. *)

val lups_per_cl : Yasksite_arch.Machine.t -> int
(** Lattice updates per cache line (8 for 64-byte lines). *)
