lib/ecm/lc.ml: Array Config Incore List Yasksite_arch Yasksite_stencil
