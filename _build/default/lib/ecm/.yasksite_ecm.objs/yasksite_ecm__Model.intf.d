lib/ecm/model.mli: Config Incore Lc Yasksite_arch Yasksite_stencil
