lib/ecm/roofline.ml: Yasksite_arch Yasksite_stencil
