lib/ecm/incore.mli: Yasksite_arch Yasksite_stencil
