lib/ecm/lc.mli: Config Yasksite_arch Yasksite_stencil
