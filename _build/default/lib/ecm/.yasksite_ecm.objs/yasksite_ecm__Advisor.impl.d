lib/ecm/advisor.ml: Array Config Hashtbl List Model Yasksite_arch Yasksite_stencil
