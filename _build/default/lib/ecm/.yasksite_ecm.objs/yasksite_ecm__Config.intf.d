lib/ecm/config.mli:
