lib/ecm/roofline.mli: Yasksite_arch Yasksite_stencil
