lib/ecm/model.ml: Array Buffer Config Incore Lc Printf String Yasksite_arch Yasksite_stencil
