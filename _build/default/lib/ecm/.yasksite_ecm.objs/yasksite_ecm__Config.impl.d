lib/ecm/config.ml: Array Printf String
