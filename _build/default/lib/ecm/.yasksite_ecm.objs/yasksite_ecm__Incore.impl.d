lib/ecm/incore.ml: Array List Yasksite_arch Yasksite_stencil
