lib/ecm/advisor.mli: Config Model Yasksite_arch Yasksite_stencil
