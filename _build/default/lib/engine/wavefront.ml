module Grid = Yasksite_grid.Grid
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Config = Yasksite_ecm.Config

let steps ?trace ?(config = Config.default) ?vec_unit ?lo ?hi
    (spec : Spec.t) ~a ~b ~steps =
  if spec.n_fields <> 1 then
    invalid_arg "Wavefront.steps: single-field stencils only";
  let dims = Grid.dims a in
  if Grid.dims b <> dims then invalid_arg "Wavefront.steps: dims mismatch";
  let rank = Array.length dims in
  let lo = match lo with None -> Array.make rank 0 | Some l -> Array.copy l in
  let hi = match hi with None -> Array.copy dims | Some h -> Array.copy h in
  if lo.(0) <> 0 || hi.(0) <> dims.(0) then
    invalid_arg "Wavefront.steps: streamed dimension must stay full";
  let info = Analysis.of_spec spec in
  let r0 = info.radius.(0) in
  let shift = r0 + 1 in
  let n0 = dims.(0) in
  let grids = [| a; b |] in
  let stats = ref Sweep.zero_stats in
  let total = ref 0 in
  (* Update plane [z] of timestep [t] -> [t+1] (absolute step index
     [base + t]), ping-ponging between the two grids. *)
  let update_plane ~abs_t z =
    let src = grids.(abs_t mod 2) and dst = grids.((abs_t + 1) mod 2) in
    let plo = Array.copy lo and phi = Array.copy hi in
    plo.(0) <- z;
    phi.(0) <- z + 1;
    let s =
      Sweep.run_region ?trace ~config ?vec_unit spec ~inputs:[| src |]
        ~output:dst ~lo:plo ~hi:phi
    in
    stats := Sweep.add_stats !stats s
  in
  while !total < steps do
    let depth = min config.Config.wavefront (steps - !total) in
    for front = 0 to n0 - 1 + ((depth - 1) * shift) do
      for t = 0 to depth - 1 do
        let z = front - (t * shift) in
        if z >= 0 && z < n0 then update_plane ~abs_t:(!total + t) z
      done
    done;
    total := !total + depth
  done;
  (grids.(steps mod 2), !stats)
