lib/engine/measure.ml: Array Sweep Sys Wavefront Yasksite_arch Yasksite_cachesim Yasksite_ecm Yasksite_grid Yasksite_stencil Yasksite_util
