lib/engine/wavefront.ml: Array Sweep Yasksite_ecm Yasksite_grid Yasksite_stencil
