lib/engine/measure.mli: Yasksite_arch Yasksite_ecm Yasksite_stencil
