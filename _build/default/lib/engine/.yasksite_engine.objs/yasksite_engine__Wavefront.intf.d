lib/engine/wavefront.mli: Sweep Yasksite_cachesim Yasksite_ecm Yasksite_grid Yasksite_stencil
