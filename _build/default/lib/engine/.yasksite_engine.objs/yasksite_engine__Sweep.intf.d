lib/engine/sweep.mli: Yasksite_cachesim Yasksite_ecm Yasksite_grid Yasksite_stencil
