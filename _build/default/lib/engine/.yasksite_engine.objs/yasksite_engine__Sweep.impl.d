lib/engine/sweep.ml: Array List Yasksite_cachesim Yasksite_ecm Yasksite_grid Yasksite_stencil
