(** Description of one level of a CPU cache hierarchy.

    Sizes and associativity drive both the analytic layer-condition
    analysis (ECM) and the trace-driven cache simulator; the transfer
    bandwidth drives the per-level data-transfer terms of the ECM model. *)

type fill_policy =
  | Inclusive  (** fills propagate into this level on a miss below it *)
  | Victim
      (** exclusive / victim cache: filled only by evictions from the
          level above (AMD-Rome-style L3) *)

type t = {
  name : string;  (** e.g. "L1", "L2", "L3" *)
  size_bytes : int;  (** capacity visible to one core's accesses *)
  assoc : int;  (** set associativity *)
  line_bytes : int;  (** cache line size *)
  shared_by : int;  (** number of cores sharing this level (1 = private) *)
  bytes_per_cycle : float;
      (** sustained transfer bandwidth between this level and the level
          above it (towards the core), per core, in bytes per cycle *)
  latency_cycles : float;
      (** access latency (informational: throughput-oriented streaming
          kernels hide it behind prefetch; reserved for latency-bound
          extensions) *)
  fill : fill_policy;
}

val v :
  name:string ->
  size_bytes:int ->
  assoc:int ->
  ?line_bytes:int ->
  ?shared_by:int ->
  bytes_per_cycle:float ->
  latency_cycles:float ->
  ?fill:fill_policy ->
  unit ->
  t
(** Constructor with validation: sizes positive, size divisible by
    [assoc * line_bytes]. Defaults: 64-byte lines, private, inclusive. *)

val n_sets : t -> int
(** Number of sets ([size / (assoc * line)]). *)

val lines : t -> int
(** Total number of lines. *)

val scale : factor:int -> t -> t
(** [scale ~factor l] divides the capacity by [factor] (keeping line size
    and associativity, reducing the number of sets); used to shrink real
    machines to simulation scale. *)

val per_core_size : t -> int
(** Capacity divided by the number of sharers — the fair share one core
    can count on, which is what layer conditions use for shared levels. *)

val pp : Format.formatter -> t -> unit
