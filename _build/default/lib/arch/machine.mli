(** Whole-machine model: the analytic counterpart of a testbed node.

    Two presets mirror the paper's testbed — an Intel Cascade Lake SP
    socket and an AMD Rome socket — plus a small generic chip used by the
    test suite. Because we "measure" on a trace-driven simulator rather
    than silicon, {!scaled} shrinks the cache hierarchy (default 8x)
    while keeping bandwidth ratios, core counts and SIMD shape intact;
    experiments shrink their working sets by the same factor, preserving
    every capacity-relative effect the paper studies. *)

type vendor = Intel | Amd | Generic

type overlap =
  | Serial
      (** data transfers through the hierarchy do not overlap; the ECM
          time is [max (T_OL, T_nOL + sum T_data)] (Intel composition) *)
  | Overlapping
      (** transfers at different levels overlap; the ECM time is
          [max (T_OL, T_nOL, T_data_1, ...)] (AMD Zen composition) *)

type simd = {
  dp_lanes : int;  (** doubles per SIMD register (8 = AVX-512, 4 = AVX2) *)
  fma_ports : int;  (** FMA-capable execution ports *)
  add_ports : int;  (** ports usable for non-fused adds *)
  load_ports : int;
  store_ports : int;
}

type t = {
  name : string;
  vendor : vendor;
  freq_ghz : float;
  cores : int;
  simd : simd;
  caches : Cache_level.t array;
      (** innermost (L1) first; each level's [bytes_per_cycle] is the
          per-core bandwidth of the link towards the {e next} (farther)
          level; the last level's link is its memory interface *)
  mem_bw_chip_gbs : float;  (** saturated chip-level memory bandwidth *)
  mem_latency_cycles : float;
  overlap : overlap;
}

val v :
  name:string ->
  vendor:vendor ->
  freq_ghz:float ->
  cores:int ->
  simd:simd ->
  caches:Cache_level.t list ->
  mem_bw_chip_gbs:float ->
  mem_latency_cycles:float ->
  overlap:overlap ->
  t
(** Validating constructor: at least one cache level, monotonically
    non-decreasing capacities, positive frequency/bandwidth. *)

val cascade_lake : t
(** Intel Xeon Gold 6248-class Cascade Lake SP socket: 20 cores, 2.5 GHz,
    AVX-512, 3-level hierarchy, serial ECM composition. *)

val rome : t
(** AMD EPYC 7742-class Rome socket: 64 cores, 2.25 GHz, AVX2, victim L3
    shared per 4-core CCX, overlapping ECM composition. *)

val test_chip : t
(** Tiny 4-core AVX2 machine with KiB-scale caches for fast unit tests. *)

val scaled : ?factor:int -> t -> t
(** [scaled ~factor m] shrinks every cache level's capacity by [factor]
    (default 8) and renames the machine ("name/8"). *)

val line_bytes : t -> int
(** Cache line size (uniform across levels; asserted by [v]). *)

val cycles_per_second : t -> float

val peak_flops_core : t -> float
(** Peak double-precision FLOP/s of one core (FMA counts as 2). *)

val peak_flops_chip : t -> float

val mem_bytes_per_cycle_chip : t -> float
(** Chip memory bandwidth expressed in bytes per core-clock cycle. *)

val last_level : t -> Cache_level.t

val levels : t -> int
(** Number of cache levels. *)

val pp : Format.formatter -> t -> unit

val describe : t -> Yasksite_util.Table.t
(** Table of the machine's characteristics (the paper's testbed table). *)
