lib/arch/cache_level.ml: Format Yasksite_util
