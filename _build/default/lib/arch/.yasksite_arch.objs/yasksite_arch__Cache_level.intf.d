lib/arch/cache_level.mli: Format
