lib/arch/machine_file.mli: Machine
