lib/arch/machine_file.ml: Array Buffer Cache_level In_channel List Machine Printf Result String
