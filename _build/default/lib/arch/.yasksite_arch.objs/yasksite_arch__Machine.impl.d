lib/arch/machine.ml: Array Cache_level Format Printf Table Units Yasksite_util
