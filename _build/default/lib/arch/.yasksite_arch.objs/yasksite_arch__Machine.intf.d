lib/arch/machine.mli: Cache_level Format Yasksite_util
