type fill_policy = Inclusive | Victim

type t = {
  name : string;
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  shared_by : int;
  bytes_per_cycle : float;
  latency_cycles : float;
  fill : fill_policy;
}

let v ~name ~size_bytes ~assoc ?(line_bytes = 64) ?(shared_by = 1)
    ~bytes_per_cycle ~latency_cycles ?(fill = Inclusive) () =
  if size_bytes <= 0 then invalid_arg "Cache_level.v: size must be positive";
  if assoc <= 0 then invalid_arg "Cache_level.v: assoc must be positive";
  if line_bytes <= 0 then invalid_arg "Cache_level.v: line must be positive";
  if shared_by <= 0 then invalid_arg "Cache_level.v: shared_by must be positive";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache_level.v: size not divisible by assoc * line";
  if bytes_per_cycle <= 0.0 then
    invalid_arg "Cache_level.v: bandwidth must be positive";
  { name; size_bytes; assoc; line_bytes; shared_by; bytes_per_cycle;
    latency_cycles; fill }

let n_sets t = t.size_bytes / (t.assoc * t.line_bytes)

let lines t = t.size_bytes / t.line_bytes

let scale ~factor t =
  if factor <= 0 then invalid_arg "Cache_level.scale: factor must be positive";
  let size_bytes = max (t.assoc * t.line_bytes) (t.size_bytes / factor) in
  (* Round to a set-aligned size. *)
  let unit = t.assoc * t.line_bytes in
  let size_bytes = size_bytes / unit * unit in
  { t with size_bytes }

let per_core_size t = t.size_bytes / t.shared_by

let pp fmt t =
  Format.fprintf fmt "%s: %s, %d-way, %dB lines, shared by %d, %.0f B/cy, %s"
    t.name
    (Yasksite_util.Units.bytes t.size_bytes)
    t.assoc t.line_bytes t.shared_by t.bytes_per_cycle
    (match t.fill with Inclusive -> "inclusive" | Victim -> "victim")
