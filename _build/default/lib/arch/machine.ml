type vendor = Intel | Amd | Generic

type overlap = Serial | Overlapping

type simd = {
  dp_lanes : int;
  fma_ports : int;
  add_ports : int;
  load_ports : int;
  store_ports : int;
}

type t = {
  name : string;
  vendor : vendor;
  freq_ghz : float;
  cores : int;
  simd : simd;
  caches : Cache_level.t array;
  mem_bw_chip_gbs : float;
  mem_latency_cycles : float;
  overlap : overlap;
}

let v ~name ~vendor ~freq_ghz ~cores ~simd ~caches ~mem_bw_chip_gbs
    ~mem_latency_cycles ~overlap =
  if caches = [] then invalid_arg "Machine.v: need at least one cache level";
  if freq_ghz <= 0.0 then invalid_arg "Machine.v: frequency must be positive";
  if cores <= 0 then invalid_arg "Machine.v: cores must be positive";
  if mem_bw_chip_gbs <= 0.0 then
    invalid_arg "Machine.v: memory bandwidth must be positive";
  let caches = Array.of_list caches in
  let line = caches.(0).Cache_level.line_bytes in
  Array.iteri
    (fun i (l : Cache_level.t) ->
      if l.line_bytes <> line then
        invalid_arg "Machine.v: non-uniform line size";
      if i > 0 && l.size_bytes < caches.(i - 1).size_bytes then
        invalid_arg "Machine.v: cache capacities must be non-decreasing")
    caches;
  { name; vendor; freq_ghz; cores; simd; caches; mem_bw_chip_gbs;
    mem_latency_cycles; overlap }

let kib n = n * 1024
let mib n = n * 1024 * 1024

let cascade_lake =
  v ~name:"CascadeLake-SP" ~vendor:Intel ~freq_ghz:2.5 ~cores:20
    ~simd:{ dp_lanes = 8; fma_ports = 2; add_ports = 2; load_ports = 2;
            store_ports = 1 }
    ~caches:
      [ Cache_level.v ~name:"L1" ~size_bytes:(kib 32) ~assoc:8
          ~bytes_per_cycle:64.0 ~latency_cycles:4.0 ();
        Cache_level.v ~name:"L2" ~size_bytes:(mib 1) ~assoc:16
          ~bytes_per_cycle:16.0 ~latency_cycles:14.0 ();
        Cache_level.v ~name:"L3" ~size_bytes:(27 * 1024 * 1024 + kib 512)
          ~assoc:11 ~shared_by:20 ~bytes_per_cycle:5.6 ~latency_cycles:50.0 () ]
    ~mem_bw_chip_gbs:105.0 ~mem_latency_cycles:200.0 ~overlap:Serial

let rome =
  v ~name:"Rome" ~vendor:Amd ~freq_ghz:2.25 ~cores:64
    ~simd:{ dp_lanes = 4; fma_ports = 2; add_ports = 2; load_ports = 2;
            store_ports = 1 }
    ~caches:
      [ Cache_level.v ~name:"L1" ~size_bytes:(kib 32) ~assoc:8
          ~bytes_per_cycle:32.0 ~latency_cycles:4.0 ();
        Cache_level.v ~name:"L2" ~size_bytes:(kib 512) ~assoc:8
          ~bytes_per_cycle:32.0 ~latency_cycles:12.0 ();
        Cache_level.v ~name:"L3" ~size_bytes:(mib 16) ~assoc:16 ~shared_by:4
          ~bytes_per_cycle:4.5 ~latency_cycles:40.0 ~fill:Cache_level.Victim
          () ]
    ~mem_bw_chip_gbs:140.0 ~mem_latency_cycles:220.0 ~overlap:Overlapping

let test_chip =
  v ~name:"TestChip" ~vendor:Generic ~freq_ghz:2.0 ~cores:4
    ~simd:{ dp_lanes = 4; fma_ports = 1; add_ports = 1; load_ports = 2;
            store_ports = 1 }
    ~caches:
      [ Cache_level.v ~name:"L1" ~size_bytes:(kib 4) ~assoc:4
          ~bytes_per_cycle:32.0 ~latency_cycles:4.0 ();
        Cache_level.v ~name:"L2" ~size_bytes:(kib 32) ~assoc:8
          ~bytes_per_cycle:16.0 ~latency_cycles:12.0 ();
        Cache_level.v ~name:"L3" ~size_bytes:(kib 256) ~assoc:8 ~shared_by:4
          ~bytes_per_cycle:8.0 ~latency_cycles:40.0 () ]
    ~mem_bw_chip_gbs:20.0 ~mem_latency_cycles:150.0 ~overlap:Serial

let scaled ?(factor = 8) t =
  { t with
    name = Printf.sprintf "%s/%d" t.name factor;
    caches = Array.map (Cache_level.scale ~factor) t.caches }

let line_bytes t = t.caches.(0).Cache_level.line_bytes

let cycles_per_second t = t.freq_ghz *. 1e9

let peak_flops_core t =
  let flops_per_cycle =
    float_of_int (t.simd.dp_lanes * t.simd.fma_ports * 2)
  in
  flops_per_cycle *. cycles_per_second t

let peak_flops_chip t = peak_flops_core t *. float_of_int t.cores

let mem_bytes_per_cycle_chip t = t.mem_bw_chip_gbs *. 1e9 /. cycles_per_second t

let last_level t = t.caches.(Array.length t.caches - 1)

let levels t = Array.length t.caches

let pp fmt t =
  Format.fprintf fmt "%s: %d cores @ %.2f GHz, %d-lane DP SIMD, %s mem"
    t.name t.cores t.freq_ghz t.simd.dp_lanes
    (Yasksite_util.Units.gbs (t.mem_bw_chip_gbs *. 1e9))

let describe t =
  let open Yasksite_util in
  let tbl =
    Table.create ~title:(Printf.sprintf "Machine: %s" t.name)
      ~columns:[ ("property", Table.Left); ("value", Table.Left) ]
      ()
  in
  let vendor =
    match t.vendor with Intel -> "Intel" | Amd -> "AMD" | Generic -> "generic"
  in
  Table.add_row tbl [ "vendor"; vendor ];
  Table.add_row tbl [ "cores"; string_of_int t.cores ];
  Table.add_row tbl [ "frequency"; Printf.sprintf "%.2f GHz" t.freq_ghz ];
  Table.add_row tbl
    [ "SIMD";
      Printf.sprintf "%d DP lanes, %d FMA ports" t.simd.dp_lanes
        t.simd.fma_ports ];
  Table.add_row tbl
    [ "peak DP/core"; Units.gflops (peak_flops_core t) ];
  Array.iter
    (fun l ->
      Table.add_row tbl
        [ l.Cache_level.name; Format.asprintf "%a" Cache_level.pp l ])
    t.caches;
  Table.add_row tbl [ "memory BW (chip)"; Units.gbs (t.mem_bw_chip_gbs *. 1e9) ];
  Table.add_row tbl
    [ "ECM composition";
      (match t.overlap with
      | Serial -> "serial (non-overlapping transfers)"
      | Overlapping -> "overlapping transfers") ];
  tbl
