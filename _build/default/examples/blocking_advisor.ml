(* Spatial blocking and layer conditions: sweep the y-block size of a
   3D 7-point stencil, showing where the analytic layer conditions
   predict traffic steps and how measured performance follows.

   Run with: dune exec examples/blocking_advisor.exe *)
open Yasksite
module Table = Yasksite_util.Table

let () =
  let machine = Machine.scaled ~factor:8 Machine.cascade_lake in
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let dims = [| 64; 96; 96 |] in
  let k = kernel ~machine ~dims spec in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "heat-3d-7pt on %s, grid 64x96x96, 1 thread"
           machine.Machine.name)
      ~columns:
        [ ("block", Table.Left); ("L2 condition", Table.Left);
          ("pred B/LUP mem", Table.Right); ("pred MLUP/s", Table.Right);
          ("meas MLUP/s", Table.Right); ("err", Table.Right) ]
      ()
  in
  let configs =
    Config.v ()
    :: List.map
         (fun by -> Config.v ~block:[| 0; by; 96 |] ())
         [ 4; 8; 16; 32; 64 ]
  in
  List.iter
    (fun config ->
      let p = predict k ~config in
      let m = measure k ~config in
      let cond =
        match p.Model.boundaries.(1).Lc.condition with
        | Lc.All_fits -> "fits"
        | Lc.Outer_reuse -> "3D-LC holds"
        | Lc.Row_reuse -> "2D-LC holds"
        | Lc.No_reuse -> "broken"
      in
      Table.add_row tbl
        [ Config.describe config; cond;
          Table.cell_f p.Model.mem_bytes_per_lup;
          Table.cell_f (p.Model.lups_single /. 1e6);
          Table.cell_f (m.Yasksite_engine.Measure.lups_core /. 1e6);
          Table.cell_pct
            (Yasksite_util.Stats.rel_error ~predicted:p.Model.lups_single
               ~measured:m.Yasksite_engine.Measure.lups_core) ])
    configs;
  Table.print tbl;
  let best, p = autotune k ~threads:1 in
  Printf.printf "\nAdvisor's pick: %s -> predicted %.0f MLUP/s\n"
    (Config.describe best)
    (p.Model.lups_chip /. 1e6)
