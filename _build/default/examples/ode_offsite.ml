(* Offsite integration: rank the implementation variants of RK4 applied
   to a 2D heat equation with the ECM model, validate the ranking on the
   simulated machine, then actually solve the PDE with the selected
   variant and check the numerical error.

   Run with: dune exec examples/ode_offsite.exe *)
open Yasksite
module Table = Yasksite_util.Table
module Pde = Ode.Pde
module Tableau = Ode.Tableau

let () =
  let machine = Machine.scaled ~factor:8 Machine.cascade_lake in
  let pde = Pde.heat ~rank:2 ~n:384 ~alpha:1.0 in
  let tab = Tableau.rk4 in
  (* Step size from the diffusion stability limit (lambda_max ~ 4 d
     alpha / dx^2, RK4 stability interval ~2.78). *)
  let dx = pde.Pde.dx in
  let h = 0.5 *. dx *. dx /. (4.0 *. 1.0 *. 2.0) in

  (* 1. Enumerate and score variants: prediction vs measurement. *)
  let candidates = Offsite.evaluate machine pde tab ~h ~threads:4 in
  let tbl =
    Table.create ~title:"RK4 on heat-2d (384x384, memory-bound), 4 threads"
      ~columns:
        [ ("variant", Table.Left); ("tuned", Table.Left);
          ("sweeps/step", Table.Right); ("pred us/step", Table.Right);
          ("meas us/step", Table.Right) ]
      ()
  in
  List.iter
    (fun (c : Offsite.candidate) ->
      Table.add_row tbl
        [ (match c.Offsite.variant.Offsite.Variant.scheme with
          | `Unfused -> "unfused"
          | `Fused -> "fused"
          | `Mixed _ -> "mixed");
          (if c.Offsite.tuned then "yes" else "no");
          string_of_int (Offsite.Variant.sweeps_per_step c.Offsite.variant);
          Table.cell_f (1e6 *. c.Offsite.predicted_step_seconds);
          Table.cell_f (1e6 *. c.Offsite.measured_step_seconds) ])
    candidates;
  Table.print tbl;
  let q = Offsite.quality candidates in
  Printf.printf
    "ranking quality: kendall tau %.2f, top-1 %s, selected speedup %.2fx\n\n"
    q.Offsite.kendall
    (if q.Offsite.top1 then "correct" else "wrong")
    q.Offsite.speedup_selected;

  (* 2. Solve the PDE with the predicted-best variant and verify the
     numerics against the analytic solution. *)
  let selected = List.hd candidates in
  let ex = Offsite.Executor.create pde selected.Offsite.variant in
  let steps = 200 in
  Offsite.Executor.run ex ~steps;
  let t_final = h *. float_of_int steps in
  let err =
    Pde.grid_error_vs_exact pde ~tm:t_final (Offsite.Executor.state ex)
  in
  Printf.printf
    "solved heat-2d for %d steps with %s: max error vs analytic solution = %.2e\n"
    steps selected.Offsite.variant.Offsite.Variant.name err
