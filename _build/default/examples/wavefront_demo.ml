(* Temporal (wavefront) blocking: advance a smoother many timesteps,
   checking (a) bit-exact agreement with the naive schedule and (b) the
   memory-traffic reduction the ECM temporal model predicts.

   Run with: dune exec examples/wavefront_demo.exe *)
open Yasksite
module Grid = Yasksite.Grid

let () =
  let machine = Machine.scaled ~factor:8 Machine.cascade_lake in
  let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt in
  let dims = [| 64; 64; 64 |] in
  let halo = [| 1; 1; 1 |] in

  (* Correctness: 12 steps, naive vs wavefront depth 4 — identical bits. *)
  let mk seed =
    let g = Grid.create ~halo ~dims () in
    let rng = Yasksite_util.Prng.create ~seed in
    Grid.fill g ~f:(fun _ -> Yasksite_util.Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
    Grid.halo_dirichlet g 0.0;
    g
  in
  let a1 = mk 1 and b1 = mk 2 and a2 = mk 1 and b2 = mk 2 in
  let naive, _ = Engine.Wavefront.steps spec ~a:a1 ~b:b1 ~steps:12 in
  let wf, _ =
    Engine.Wavefront.steps ~config:(Config.v ~wavefront:4 ()) spec ~a:a2 ~b:b2
      ~steps:12
  in
  Printf.printf "wavefront vs naive after 12 steps: max |diff| = %g\n\n"
    (Grid.max_abs_diff naive wf);

  (* Performance: predicted and measured memory traffic and speed as the
     wavefront deepens. *)
  let k = kernel ~machine ~dims spec in
  Printf.printf "%-6s %16s %16s %14s %14s\n" "depth" "pred B/LUP(mem)"
    "meas B/LUP(mem)" "pred MLUP/s" "meas MLUP/s";
  List.iter
    (fun depth ->
      let config = Config.v ~wavefront:depth () in
      let p = predict k ~config in
      let m = measure k ~config in
      Printf.printf "%-6d %16.1f %16.1f %14.0f %14.0f\n" depth
        p.Model.mem_bytes_per_lup m.Yasksite_engine.Measure.mem_bytes_per_lup
        (p.Model.lups_single /. 1e6)
        (m.Yasksite_engine.Measure.lups_core /. 1e6))
    [ 1; 2; 4; 8 ]
