(* A geometric multigrid Poisson solver built on the YaskSite public
   API: weighted-Jacobi smoothing, residual evaluation, restriction and
   prolongation are all stencil sweeps through the engine, so the same
   kernels can be predicted, tuned and measured like any other. Solves
   -u'' = f on (0,1) with homogeneous Dirichlet boundaries and verifies
   against the analytic solution, then asks the ECM model where the
   smoother's time goes across the grid hierarchy.

   Run with: dune exec examples/multigrid.exe *)
open Yasksite
module Grid = Yasksite.Grid
module Sweep = Engine.Sweep

let pi = 4.0 *. atan 1.0

(* Kernels (1D, resolved coefficients). [h2] is dx^2 of the level. *)

let jacobi_spec ~h2 ~omega =
  (* u' = (1-w) u + w/2 (u_l + u_r + h^2 f): fields u (0) and f (1). *)
  let open Stencil.Dsl in
  Stencil.Spec.v ~name:"mg-jacobi" ~rank:1 ~n_fields:2
    ((c (1.0 -. omega) *: fld [ 0 ])
    +: (c (omega /. 2.0)
       *: (fld [ -1 ] +: fld [ 1 ] +: (c h2 *: fld ~field:1 [ 0 ]))))

let residual_spec ~h2 =
  (* r = f - (-u'' ) = f + (u_l - 2u + u_r)/h^2 *)
  let open Stencil.Dsl in
  Stencil.Spec.v ~name:"mg-residual" ~rank:1 ~n_fields:2
    (fld ~field:1 [ 0 ]
    +: (c (1.0 /. h2)
       *: (fld [ -1 ] -: (c 2.0 *: fld [ 0 ]) +: fld [ 1 ])))

(* Full-weighting restriction: coarse_i = (r_{2i} + 2 r_{2i+1} + r_{2i+2})/4
   expressed as a stride-2 gather — done point-wise on the coarse grid. *)
let restrict ~fine ~coarse =
  Grid.iter_interior coarse ~f:(fun idx ->
      let i = idx.(0) in
      let v =
        (Grid.get fine [| 2 * i |]
        +. (2.0 *. Grid.get fine [| (2 * i) + 1 |])
        +. Grid.get fine [| (2 * i) + 2 |])
        /. 4.0
      in
      Grid.set coarse idx v)

(* Linear prolongation and correction: u_fine += P e_coarse. *)
let prolong_add ~coarse ~fine =
  Grid.iter_interior fine ~f:(fun idx ->
      let i = idx.(0) in
      let e =
        if i mod 2 = 1 then Grid.get coarse [| i / 2 |]
        else begin
          let left = if i = 0 then 0.0 else Grid.get coarse [| (i / 2) - 1 |] in
          let right =
            if i / 2 >= (Grid.dims coarse).(0) then 0.0
            else Grid.get coarse [| i / 2 |]
          in
          0.5 *. (left +. right)
        end
      in
      Grid.set fine idx (Grid.get fine idx +. e))

type level = {
  n : int;
  h2 : float;
  u : Grid.t;
  f : Grid.t;
  r : Grid.t;
  scratch : Grid.t;
  jacobi : Stencil.Spec.t;
  residual : Stencil.Spec.t;
}

let make_level n =
  let h = 1.0 /. float_of_int (n + 1) in
  let halo = [| 1 |] in
  let mk () =
    let g = Grid.create ~halo ~dims:[| n |] () in
    Grid.halo_dirichlet g 0.0;
    g
  in
  { n;
    h2 = h *. h;
    u = mk ();
    f = mk ();
    r = mk ();
    scratch = mk ();
    jacobi = jacobi_spec ~h2:(h *. h) ~omega:(2.0 /. 3.0);
    residual = residual_spec ~h2:(h *. h) }

let smooth level ~sweeps =
  for _ = 1 to sweeps do
    ignore
      (Sweep.run level.jacobi
         ~inputs:[| level.u; level.f |]
         ~output:level.scratch
        : Sweep.stats);
    Grid.copy_interior ~src:level.scratch ~dst:level.u
  done

let compute_residual level =
  ignore
    (Sweep.run level.residual
       ~inputs:[| level.u; level.f |]
       ~output:level.r
      : Sweep.stats)

let rec v_cycle levels =
  match levels with
  | [] -> ()
  | [ coarsest ] ->
      (* n = 3: a few dozen Jacobi sweeps are an exact solve. *)
      smooth coarsest ~sweeps:60
  | fine :: (coarse :: _ as rest) ->
      smooth fine ~sweeps:3;
      compute_residual fine;
      restrict ~fine:fine.r ~coarse:coarse.f;
      Grid.fill coarse.u ~f:(fun _ -> 0.0);
      v_cycle rest;
      prolong_add ~coarse:coarse.u ~fine:fine.u;
      smooth fine ~sweeps:3

let () =
  (* Hierarchy: 511 -> 255 -> ... -> 3 interior points. *)
  let sizes = [ 511; 255; 127; 63; 31; 15; 7; 3 ] in
  let levels = List.map make_level sizes in
  let finest = List.hd levels in
  (* Problem: -u'' = pi^2 sin(pi x), exact u = sin(pi x). *)
  let h = 1.0 /. float_of_int (finest.n + 1) in
  Grid.fill finest.f ~f:(fun idx ->
      let x = float_of_int (idx.(0) + 1) *. h in
      pi *. pi *. sin (pi *. x));
  let exact idx =
    let x = float_of_int (idx.(0) + 1) *. h in
    sin (pi *. x)
  in
  let error () =
    let worst = ref 0.0 in
    Grid.iter_interior finest.u ~f:(fun idx ->
        worst := max !worst (abs_float (Grid.get finest.u idx -. exact idx)));
    !worst
  in
  Printf.printf "V-cycle convergence (weighted Jacobi 3+3, 8 levels):\n";
  for cycle = 1 to 8 do
    v_cycle levels;
    Printf.printf "  cycle %d: max error vs exact = %.3e\n" cycle (error ())
  done;

  (* Where does smoothing time go? Ask the model per level. *)
  let machine = Machine.scaled ~factor:8 Machine.cascade_lake in
  Printf.printf
    "\nECM view of the Jacobi smoother across the hierarchy (1 core, %s):\n"
    machine.Machine.name;
  let show n spec =
    let k = kernel ~machine ~dims:[| n |] spec in
    let p = predict k ~config:(Config.v ()) in
    Printf.printf "  n=%7d: %6.0f MLUP/s predicted, %4.1f B/LUP from memory\n"
      n
      (p.Model.lups_single /. 1e6)
      p.Model.mem_bytes_per_lup
  in
  List.iter (fun level -> show level.n level.jacobi) levels;
  (* Contrast: at production resolutions the smoother leaves the cache
     and becomes a bandwidth problem — exactly what YaskSite tunes. *)
  show (1 lsl 21) (jacobi_spec ~h2:1e-12 ~omega:(2.0 /. 3.0))
