(* Quickstart: define a stencil with the DSL, ask the ECM model for a
   prediction, let the advisor tune it analytically, and validate on the
   simulated machine.

   Run with: dune exec examples/quickstart.exe *)
open Yasksite

let () =
  (* A 3D 7-point heat stencil, written from scratch with the DSL (the
     suite also ships it as Stencil.Suite.heat_3d_7pt). *)
  let spec =
    let open Stencil.Dsl in
    Stencil.Spec.v ~name:"my-heat-3d" ~rank:3
      ((c 0.1
       *: sum
            [ fld [ -1; 0; 0 ]; fld [ 1; 0; 0 ]; fld [ 0; -1; 0 ];
              fld [ 0; 1; 0 ]; fld [ 0; 0; -1 ]; fld [ 0; 0; 1 ] ])
      +: (c 0.4 *: fld [ 0; 0; 0 ]))
  in
  print_endline "Generated kernel (YASK-style scalar C):";
  print_endline (Stencil.Spec.to_c spec);

  (* Bind it to a machine model. We use the 8x-scaled Cascade Lake so the
     trace-driven measurements below finish instantly; the analytic model
     works at any scale. *)
  let machine = Machine.scaled ~factor:8 Machine.cascade_lake in
  let k = kernel ~machine ~dims:[| 64; 64; 64 |] spec in

  (* 1. Pure model: predicts performance without executing anything. *)
  let naive = Config.v ~threads:8 () in
  Printf.printf "ECM prediction (naive): %s\n\n" (Model.summary (predict k ~config:naive));

  (* 2. Analytic autotuning: the advisor ranks hundreds of configurations
     using only the model. *)
  let best, p = autotune k ~threads:8 in
  Printf.printf "Advisor selected: %s (predicted %.2f GLUP/s)\n\n"
    (Config.describe best)
    (p.Model.lups_chip /. 1e9);

  (* 3. Validation on the simulated machine: prediction vs measurement. *)
  print_string (report k ~config:best);
  print_newline ();
  print_string (report k ~config:naive)
