(* Design-space exploration with the analytic model: because YaskSite
   predicts performance without running code, it can answer "what if the
   machine were different?" questions — here: how does heat-3d-7pt
   respond to L2 capacity, memory bandwidth, and SIMD width variations
   of a Cascade-Lake-like chip? No simulation involved; every number is
   a pure model evaluation.

   Run with: dune exec examples/machine_explorer.exe *)
open Yasksite
module Table = Yasksite_util.Table

let base = Machine.cascade_lake

let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt

let info = Stencil.Analysis.of_spec spec

let dims = [| 512; 512; 512 |]

let predict machine threads =
  let p = Model.predict machine info ~dims ~config:(Config.v ~threads ()) in
  (p.Model.lups_chip /. 1e9, p.Model.saturation_cores)

let with_l2 factor =
  let caches =
    Array.to_list
      (Array.map
         (fun (l : Cache_level.t) ->
           if l.Cache_level.name = "L2" then
             { l with Cache_level.size_bytes = l.Cache_level.size_bytes * factor }
           else l)
         base.Machine.caches)
  in
  Machine.v
    ~name:(Printf.sprintf "CLX-L2x%d" factor)
    ~vendor:base.Machine.vendor ~freq_ghz:base.Machine.freq_ghz
    ~cores:base.Machine.cores ~simd:base.Machine.simd ~caches
    ~mem_bw_chip_gbs:base.Machine.mem_bw_chip_gbs
    ~mem_latency_cycles:base.Machine.mem_latency_cycles
    ~overlap:base.Machine.overlap

let with_bw gbs = { base with Machine.name = Printf.sprintf "CLX-%.0fGB/s" gbs;
                    mem_bw_chip_gbs = gbs }

let () =
  let tbl =
    Table.create
      ~title:"What-if analysis: heat-3d-7pt, 512^3 grid, 20 threads (model only)"
      ~columns:
        [ ("machine variant", Table.Left); ("chip GLUP/s", Table.Right);
          ("saturation cores", Table.Right) ]
      ()
  in
  let row m =
    let lups, sat = predict m 20 in
    Table.add_row tbl
      [ m.Machine.name; Table.cell_f lups; string_of_int sat ]
  in
  row base;
  row (with_l2 2);
  row (with_l2 4);
  row (with_bw 140.0);
  row (with_bw 210.0);
  Table.print tbl;
  (* Where does blocking stop mattering as L2 grows? *)
  print_newline ();
  let tbl2 =
    Table.create ~title:"Best analytic config per machine variant (1 thread)"
      ~columns:
        [ ("machine variant", Table.Left); ("advisor's config", Table.Left);
          ("pred MLUP/s", Table.Right) ]
      ()
  in
  List.iter
    (fun m ->
      let cfg, p = Advisor.best m info ~dims ~threads:1 in
      Table.add_row tbl2
        [ m.Machine.name; Config.describe cfg;
          Table.cell_f ~prec:0 (p.Model.lups_chip /. 1e6) ])
    [ base; with_l2 4; with_bw 210.0 ];
  Table.print tbl2
