examples/quickstart.mli:
