examples/multigrid.mli:
