examples/machine_explorer.ml: Advisor Array Cache_level Config List Machine Model Printf Stencil Yasksite Yasksite_util
