examples/ode_offsite.ml: List Machine Ode Offsite Printf Yasksite Yasksite_util
