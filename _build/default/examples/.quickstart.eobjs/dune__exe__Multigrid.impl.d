examples/multigrid.ml: Array Config Engine List Machine Model Printf Stencil Yasksite
