examples/blocking_advisor.mli:
