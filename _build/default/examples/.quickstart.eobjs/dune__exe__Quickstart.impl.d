examples/quickstart.ml: Config Machine Model Printf Stencil Yasksite
