examples/blocking_advisor.ml: Array Config Lc List Machine Model Printf Stencil Yasksite Yasksite_engine Yasksite_util
