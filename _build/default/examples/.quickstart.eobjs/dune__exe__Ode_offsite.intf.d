examples/ode_offsite.mli:
