examples/wavefront_demo.mli:
