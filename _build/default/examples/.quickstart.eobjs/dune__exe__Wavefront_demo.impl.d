examples/wavefront_demo.ml: Config Engine List Machine Model Printf Stencil Yasksite Yasksite_engine Yasksite_util
